//! A small key/value store used as the replicated state machine in the
//! examples and the read-workload experiment (Fig 10).
//!
//! The paper motivates software-managed replication for "specific
//! application state or configuration information \[that\] need to be shared
//! by multiple cores" (§1); a KV map is the canonical such state.

use std::collections::BTreeMap;

use crate::rsm::StateMachine;
use crate::types::Op;

/// Deterministic in-memory key/value store.
///
/// # Examples
///
/// ```
/// use onepaxos::kv::KvStore;
/// use onepaxos::rsm::StateMachine;
/// use onepaxos::Op;
///
/// let mut kv = KvStore::new();
/// assert_eq!(kv.apply(Op::Put { key: 1, value: 10 }), None);
/// assert_eq!(kv.apply(Op::Get { key: 1 }), Some(10));
/// assert_eq!(kv.get(1), Some(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: BTreeMap<u64, u64>,
    writes: u64,
    reads: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Reads `key` without counting it as an applied operation (used for
    /// local reads in 2PC-Joint, §7.5, and for assertions in tests).
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of applied write operations.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of applied read operations.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Iterates the `(key, value)` entries in key order. Sharded
    /// deployments partition the key space, so merging per-shard replicas
    /// (for oracles and property tests) is a disjoint union of these.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// A digest of the full contents, for cheap cross-replica equality
    /// checks in tests (FNV-1a over the sorted entries).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (&k, &v) in &self.map {
            for w in [k, v] {
                for b in w.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    }
}

impl StateMachine for KvStore {
    /// `Put` returns the previous value; `Get` returns the current value;
    /// `Noop` returns `None`.
    type Output = Option<u64>;

    fn apply(&mut self, op: Op) -> Self::Output {
        match op {
            Op::Noop => None,
            Op::Put { key, value } => {
                self.writes += 1;
                self.map.insert(key, value)
            }
            Op::Get { key } => {
                self.reads += 1;
                self.get(key)
            }
            // The RSM layer unpacks batches into per-command applications
            // before they reach any state machine.
            Op::Batch(_) => unreachable!("Op::Batch must be unpacked by the Applier"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_returns_previous_value() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(Op::Put { key: 1, value: 1 }), None);
        assert_eq!(kv.apply(Op::Put { key: 1, value: 2 }), Some(1));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn counters_track_op_kinds() {
        let mut kv = KvStore::new();
        kv.apply(Op::Put { key: 1, value: 1 });
        kv.apply(Op::Get { key: 1 });
        kv.apply(Op::Noop);
        assert_eq!(kv.writes(), 1);
        assert_eq!(kv.reads(), 1);
    }

    #[test]
    fn digest_detects_divergence() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.apply(Op::Put { key: 1, value: 1 });
        b.apply(Op::Put { key: 1, value: 1 });
        assert_eq!(a.digest(), b.digest());
        b.apply(Op::Put { key: 2, value: 2 });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_order_independent_for_same_contents() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.apply(Op::Put { key: 1, value: 10 });
        a.apply(Op::Put { key: 2, value: 20 });
        b.apply(Op::Put { key: 2, value: 20 });
        b.apply(Op::Put { key: 1, value: 10 });
        assert_eq!(a.digest(), b.digest());
    }
}
