//! Fundamental identifiers and value types shared by every protocol.
//!
//! The paper views each core of a many-core machine as a node of a
//! distributed system; [`NodeId`] names such a core. Clients are cores too
//! (cores 3..47 in the paper's 48-core setup), so they are also identified
//! by [`NodeId`].

use std::fmt;

/// Virtual or real time in nanoseconds.
///
/// The sans-IO protocol state machines never read a clock themselves; the
/// surrounding harness (simulator or threaded runtime) passes `now` into
/// every handler.
pub type Nanos = u64;

/// One nanosecond expressed in [`Nanos`] (for readability in cost tables).
pub const NANOS_PER_MICRO: Nanos = 1_000;
/// One millisecond expressed in [`Nanos`].
pub const NANOS_PER_MILLI: Nanos = 1_000_000;
/// One second expressed in [`Nanos`].
pub const NANOS_PER_SEC: Nanos = 1_000_000_000;

/// Identifier of a core/node participating in the system.
///
/// In the paper's deployments, cores 0..R-1 host replicas (core 0 is the
/// initial leader/coordinator) and the remaining cores host clients.
///
/// # Examples
///
/// ```
/// use onepaxos::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node id as a zero-based index (useful for vector indexing).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A Paxos instance number: the slot in the totally ordered command log.
///
/// "The ultimate goal of Basic-Paxos is to assign totally ordered instance
/// numbers to client commands" (§2.3).
pub type Instance = u64;

/// A proposal number ("ballot"): totally ordered and unique per proposer.
///
/// Ordered first by `round` then by `node`, so two proposers can never draw
/// the same ballot. `Ballot::ZERO` is smaller than any ballot a proposer
/// generates and plays the role of the paper's initial `hpn = -∞`.
///
/// # Examples
///
/// ```
/// use onepaxos::{Ballot, NodeId};
/// let b1 = Ballot::new(1, NodeId(0));
/// let b2 = Ballot::new(1, NodeId(1));
/// let b3 = Ballot::new(2, NodeId(0));
/// assert!(b1 < b2 && b2 < b3);
/// assert!(Ballot::ZERO < b1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// Monotonically increasing round chosen by the proposer.
    pub round: u32,
    /// Tie-breaker: the proposer's node id.
    pub node: NodeId,
}

impl Ballot {
    /// The smallest possible ballot; models the pseudocode's `-∞`.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        node: NodeId(0),
    };

    /// Creates a ballot for `node` at `round`.
    pub fn new(round: u32, node: NodeId) -> Self {
        Ballot { round, node }
    }

    /// The next ballot for `node` that is strictly greater than `self`
    /// (implements the pseudocode's `new_pn()`).
    pub fn next_for(self, node: NodeId) -> Ballot {
        Ballot {
            round: self.round + 1,
            node,
        }
    }

    /// Whether this ballot is the initial `-∞` placeholder.
    pub fn is_zero(self) -> bool {
        self == Ballot::ZERO
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

/// The operation a client asks the replicated state machine to perform.
///
/// The paper's experiments use commands with no payload ([`Op::Noop`]);
/// the key/value operations exist for the examples and the read-workload
/// experiment (Fig 10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Op {
    /// A command with no effect, as in the paper's benchmarks.
    #[default]
    Noop,
    /// Write `value` under `key`.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Read the value under `key`.
    Get {
        /// Key to read.
        key: u64,
    },
}

impl Op {
    /// Whether this operation is a read (serviceable locally by 2PC-Joint,
    /// §7.5).
    pub fn is_read(self) -> bool {
        matches!(self, Op::Get { .. })
    }
}

/// A client command: the value agreed upon by the consensus protocols.
///
/// Identified by `(client, req_id)`, which the replicated-state-machine
/// layer uses for at-most-once execution and reply routing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Command {
    /// The client that issued the command.
    pub client: NodeId,
    /// Client-local sequence number, unique per client.
    pub req_id: u64,
    /// The operation to execute.
    pub op: Op,
}

impl Command {
    /// Creates a new command.
    pub fn new(client: NodeId, req_id: u64, op: Op) -> Self {
        Command { client, req_id, op }
    }

    /// A no-op command, as used by the paper's throughput experiments.
    pub fn noop(client: NodeId, req_id: u64) -> Self {
        Command::new(client, req_id, Op::Noop)
    }

    /// The `(client, req_id)` pair identifying this command.
    pub fn id(&self) -> (NodeId, u64) {
        (self.client, self.req_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_ordering_is_round_then_node() {
        let a = Ballot::new(1, NodeId(5));
        let b = Ballot::new(2, NodeId(0));
        assert!(a < b);
        let c = Ballot::new(1, NodeId(6));
        assert!(a < c);
        assert_eq!(a, Ballot::new(1, NodeId(5)));
    }

    #[test]
    fn ballot_zero_is_minimum() {
        for round in 1..4u32 {
            for node in 0..4u16 {
                assert!(Ballot::ZERO < Ballot::new(round, NodeId(node)));
            }
        }
        assert!(Ballot::ZERO.is_zero());
        assert!(!Ballot::new(1, NodeId(0)).is_zero());
    }

    #[test]
    fn next_for_is_strictly_greater_for_any_node() {
        let b = Ballot::new(3, NodeId(7));
        for node in 0..10u16 {
            assert!(b.next_for(NodeId(node)) > b);
        }
    }

    #[test]
    fn op_read_classification() {
        assert!(Op::Get { key: 1 }.is_read());
        assert!(!Op::Put { key: 1, value: 2 }.is_read());
        assert!(!Op::Noop.is_read());
    }

    #[test]
    fn command_identity() {
        let c = Command::noop(NodeId(9), 42);
        assert_eq!(c.id(), (NodeId(9), 42));
        assert_eq!(c.op, Op::Noop);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(12).index(), 12);
        assert_eq!(format!("{:?}", NodeId(12)), "n12");
    }
}
