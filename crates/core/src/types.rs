//! Fundamental identifiers and value types shared by every protocol.
//!
//! The paper views each core of a many-core machine as a node of a
//! distributed system; [`NodeId`] names such a core. Clients are cores too
//! (cores 3..47 in the paper's 48-core setup), so they are also identified
//! by [`NodeId`].

use std::fmt;
use std::sync::Arc;

/// Virtual or real time in nanoseconds.
///
/// The sans-IO protocol state machines never read a clock themselves; the
/// surrounding harness (simulator or threaded runtime) passes `now` into
/// every handler.
pub type Nanos = u64;

/// One nanosecond expressed in [`Nanos`] (for readability in cost tables).
pub const NANOS_PER_MICRO: Nanos = 1_000;
/// One millisecond expressed in [`Nanos`].
pub const NANOS_PER_MILLI: Nanos = 1_000_000;
/// One second expressed in [`Nanos`].
pub const NANOS_PER_SEC: Nanos = 1_000_000_000;

/// Identifier of a core/node participating in the system.
///
/// In the paper's deployments, cores 0..R-1 host replicas (core 0 is the
/// initial leader/coordinator) and the remaining cores host clients.
///
/// # Examples
///
/// ```
/// use onepaxos::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// First id of the synthetic batch-source namespace (see
    /// [`Self::batch_source`]). Real cores live far below it.
    pub const BATCH_SOURCE_BASE: u16 = 0x8000;

    /// The node id as a zero-based index (useful for vector indexing).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The synthetic client id under which the replica engine on this
    /// node advocates the batches it coalesces ([`Op::Batch`]). Batches
    /// need their own client identity for at-most-once execution and
    /// reply routing, and it must not collide with real clients (cores)
    /// or with the protocols' internal no-op commands (which use the
    /// replica's own id) — so each node owns one id mirrored into the
    /// top half of the [`NodeId`] space.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if the node id itself already lies in the
    /// reserved namespace.
    pub fn batch_source(self) -> NodeId {
        debug_assert!(
            self.0 < Self::BATCH_SOURCE_BASE,
            "node id {self} collides with the batch-source namespace"
        );
        NodeId(u16::MAX - self.0)
    }

    /// Whether this id is a synthetic batch source rather than a real
    /// core. Engines use it to keep batch bookkeeping out of the
    /// client-visible reply stream.
    pub fn is_batch_source(self) -> bool {
        self.0 >= Self::BATCH_SOURCE_BASE
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A Paxos instance number: the slot in the totally ordered command log.
///
/// "The ultimate goal of Basic-Paxos is to assign totally ordered instance
/// numbers to client commands" (§2.3).
pub type Instance = u64;

/// A proposal number ("ballot"): totally ordered and unique per proposer.
///
/// Ordered first by `round` then by `node`, so two proposers can never draw
/// the same ballot. `Ballot::ZERO` is smaller than any ballot a proposer
/// generates and plays the role of the paper's initial `hpn = -∞`.
///
/// # Examples
///
/// ```
/// use onepaxos::{Ballot, NodeId};
/// let b1 = Ballot::new(1, NodeId(0));
/// let b2 = Ballot::new(1, NodeId(1));
/// let b3 = Ballot::new(2, NodeId(0));
/// assert!(b1 < b2 && b2 < b3);
/// assert!(Ballot::ZERO < b1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// Monotonically increasing round chosen by the proposer.
    pub round: u32,
    /// Tie-breaker: the proposer's node id.
    pub node: NodeId,
}

impl Ballot {
    /// The smallest possible ballot; models the pseudocode's `-∞`.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        node: NodeId(0),
    };

    /// Creates a ballot for `node` at `round`.
    pub fn new(round: u32, node: NodeId) -> Self {
        Ballot { round, node }
    }

    /// The next ballot for `node` that is strictly greater than `self`
    /// (implements the pseudocode's `new_pn()`).
    pub fn next_for(self, node: NodeId) -> Ballot {
        Ballot {
            round: self.round + 1,
            node,
        }
    }

    /// Whether this ballot is the initial `-∞` placeholder.
    pub fn is_zero(self) -> bool {
        self == Ballot::ZERO
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

/// Globally unique identifier of a cross-shard transaction (see
/// [`crate::txn`]): the coordinating client plus a coordinator-local
/// sequence number. Every shard the transaction touches agrees on this
/// id, which is what lets a recovering coordinator replay the outcome
/// from the shards' logs.
///
/// # Examples
///
/// ```
/// use onepaxos::{NodeId, TxnId};
/// let t = TxnId::new(NodeId(9), 3);
/// assert_eq!(format!("{t}"), "t9.3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// The client acting as 2PC coordinator.
    pub coordinator: NodeId,
    /// Coordinator-local transaction sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Creates the id of `coordinator`'s `seq`-th transaction.
    pub fn new(coordinator: NodeId, seq: u64) -> Self {
        TxnId { coordinator, seq }
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.coordinator.0, self.seq)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.coordinator.0, self.seq)
    }
}

/// One shard's fragment of a transaction's write set: `(key, value)`
/// pairs, behind an [`Arc`] so retransmissions and log replication bump
/// a reference count instead of copying the payload (the same economy as
/// [`BatchPayload`]). All keys of one fragment are owned by one shard —
/// the coordinator partitions the write set before building fragments.
pub type TxnWrites = Arc<[(u64, u64)]>;

/// A participant shard's vote on an applied [`Op::TxnPrepare`] fragment,
/// carried as the command's state-machine output (see [`crate::txn`]).
///
/// Beyond the classic yes/no, two *retryable* votes implement the
/// bounded lock-wait queue of the `KvStore` participant: instead of
/// turning every lock conflict into an abort, a conflicting prepare may
/// **park** behind the holder ([`TxnVote::Wait`] — wait-die: only a
/// requester older than every conflicting holder parks, so wait edges
/// always point old→young and can never form a cycle) or be told to
/// retry from the coordinator's side ([`TxnVote::Busy`] — the requester
/// is younger than a holder, or the queue is full). Both leave the
/// shard entirely untouched: a parked prepare holds no locks and stages
/// nothing, so recovery sees it as `Unknown` and may safely abort it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnVote {
    /// No: the transaction is already finished as aborted (late or
    /// duplicate prepare), or the coordinator decided abort.
    Abort,
    /// Yes: fragment staged, keys locked.
    Commit,
    /// Not yet: parked in the shard's lock-wait queue behind the current
    /// holder(s); a later re-probe (fresh request id) collects the real
    /// vote once the holder's outcome releases the locks.
    Wait,
    /// Not now: the requester is younger than a conflicting holder (it
    /// must die rather than wait, or wait-die's cycle-freedom breaks) or
    /// the wait queue is at capacity. The coordinator may re-probe after
    /// a backoff window or give up and abort.
    Busy,
}

impl TxnVote {
    /// Encodes this vote as a prepare's state-machine output.
    pub fn as_output(self) -> u64 {
        match self {
            TxnVote::Abort => 0,
            TxnVote::Commit => 1,
            TxnVote::Wait => 2,
            TxnVote::Busy => 3,
        }
    }

    /// Decodes a prepare's output; `None` for values no prepare produces.
    pub fn from_output(v: u64) -> Option<TxnVote> {
        match v {
            0 => Some(TxnVote::Abort),
            1 => Some(TxnVote::Commit),
            2 => Some(TxnVote::Wait),
            3 => Some(TxnVote::Busy),
            _ => None,
        }
    }
}

/// The payload of an [`Op::Batch`]: the coalesced commands, behind an
/// [`Arc`] so cloning a batched command (broadcasts, retries, value
/// pinning across role switches) bumps a reference count instead of
/// copying the payload — the whole point of batching is to keep per-copy
/// cost off the hot cores.
pub type BatchPayload = Arc<[Command]>;

/// The operation a client asks the replicated state machine to perform.
///
/// The paper's experiments use commands with no payload ([`Op::Noop`]);
/// the key/value operations exist for the examples and the read-workload
/// experiment (Fig 10). [`Op::Batch`] carries several client commands
/// through a single agreement, amortising the per-message tx/rx CPU cost
/// that §3 identifies as the bottleneck inside a machine.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Op {
    /// A command with no effect, as in the paper's benchmarks.
    #[default]
    Noop,
    /// Write `value` under `key`.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Read the value under `key`.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Several client commands travelling through one agreement. Built by
    /// the replica engine's accumulator, never submitted by clients, and
    /// never nested.
    Batch(BatchPayload),
    /// Write several keys atomically **within one shard**: the
    /// short-circuit a single-shard transaction takes (see
    /// [`crate::txn`]). Unlike a 2PC fragment it needs no lock window —
    /// the shard's log already serializes it — and unlike [`Op::Batch`]
    /// it is an ordinary client command, so it rides the batch
    /// accumulator like any [`Op::Put`]. All keys must be owned by one
    /// shard (the coordinator partitions; the router debug-checks).
    MultiPut {
        /// The `(key, value)` pairs to write, applied in order.
        writes: TxnWrites,
    },
    /// 2PC phase 1 at one participant shard: vote on (and, on a yes
    /// vote, lock and stage) this shard's fragment of transaction
    /// `txn`'s write set. The vote is the command's state-machine
    /// output (`TXN_VOTE_COMMIT`/`TXN_VOTE_ABORT` in [`crate::txn`]),
    /// durable in the shard's log like any decided command.
    TxnPrepare {
        /// The transaction being prepared.
        txn: TxnId,
        /// This shard's fragment of the write set.
        writes: TxnWrites,
    },
    /// 2PC phase 2, commit: apply `txn`'s staged fragment and release
    /// its locks. `key` is any key of the fragment — it only routes the
    /// command to the owning shard.
    TxnCommit {
        /// The transaction to commit.
        txn: TxnId,
        /// Routing key (one key of this shard's fragment).
        key: u64,
    },
    /// 2PC phase 2, abort: discard `txn`'s staged fragment (if any) and
    /// release its locks. `key` routes like in [`Op::TxnCommit`].
    TxnAbort {
        /// The transaction to abort.
        txn: TxnId,
        /// Routing key (one key of this shard's fragment).
        key: u64,
    },
    /// Log-ordered probe of one shard's view of transaction `txn` — the
    /// status read coordinator **recovery** feeds to
    /// `txn::recover_outcome`. Because the probe is an ordinary command
    /// agreed by the shard's consensus, the replying replica has
    /// applied every command decided before it, so the answer can never
    /// under-report a transaction the shard already prepared or
    /// finished. (A relaxed read of a replica's local state can: a
    /// lagging replica answers `Unknown` about a committed transaction,
    /// which would steer recovery into a non-atomic abort.) The
    /// command's output encodes the status
    /// (`txn::TxnStatus::as_output`); `key` routes like in
    /// [`Op::TxnCommit`].
    TxnStatus {
        /// The transaction being queried.
        txn: TxnId,
        /// Routing key (any key of this shard's fragment).
        key: u64,
    },
    /// Log-ordered truncation point for one shard's replicas (the
    /// "agree on everything" move, like [`Op::TxnStatus`]): once this
    /// command applies, every replica of the shard has applied the full
    /// prefix below `watermark` and may drop it — the `Applier`'s
    /// retained log, stale reply outputs, and the protocol learner's
    /// per-instance state. Keyless: truncation is per shard group, so
    /// the submitter addresses the shard directly rather than routing
    /// by key. The watermark is a *floor* a replica proposes from its
    /// own applied prefix; because the command is ordered through the
    /// shard's log, it can only apply after every instance below it.
    Truncate {
        /// Drop everything below this instance (exclusive).
        watermark: Instance,
    },
}

impl Op {
    /// Whether this operation is a read (serviceable locally by 2PC-Joint,
    /// §7.5).
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Get { .. })
    }

    /// The key this operation addresses, if it addresses one. Shard
    /// routing partitions the key space on it; keyless commands
    /// ([`Op::Noop`], [`Op::Batch`]) route by other identity (see
    /// `shard::ShardRouter::route`). Multi-key operations route by their
    /// first key — the coordinator guarantees every key of a fragment is
    /// owned by the same shard.
    pub fn key(&self) -> Option<u64> {
        match *self {
            Op::Put { key, .. } | Op::Get { key } => Some(key),
            Op::TxnCommit { key, .. } | Op::TxnAbort { key, .. } | Op::TxnStatus { key, .. } => {
                Some(key)
            }
            Op::MultiPut { ref writes } | Op::TxnPrepare { ref writes, .. } => {
                writes.first().map(|&(key, _)| key)
            }
            Op::Noop | Op::Batch(_) | Op::Truncate { .. } => None,
        }
    }
}

/// A client command: the value agreed upon by the consensus protocols.
///
/// Identified by `(client, req_id)`, which the replicated-state-machine
/// layer uses for at-most-once execution and reply routing. For a batch,
/// `(client, req_id)` identifies the batch itself (the advocating
/// engine's [`NodeId::batch_source`] and its batch sequence number); the
/// constituent commands keep their own identities inside the payload.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Command {
    /// The client that issued the command.
    pub client: NodeId,
    /// Client-local sequence number, unique per client.
    pub req_id: u64,
    /// The operation to execute.
    pub op: Op,
}

impl Command {
    /// Creates a new command.
    pub fn new(client: NodeId, req_id: u64, op: Op) -> Self {
        Command { client, req_id, op }
    }

    /// A no-op command, as used by the paper's throughput experiments.
    pub fn noop(client: NodeId, req_id: u64) -> Self {
        Command::new(client, req_id, Op::Noop)
    }

    /// A batch command advocated by the engine on `node`: `seq` is the
    /// engine's batch sequence number, `cmds` the coalesced commands.
    pub fn batch(node: NodeId, seq: u64, cmds: Vec<Command>) -> Self {
        debug_assert!(
            cmds.iter().all(|c| !matches!(c.op, Op::Batch(_))),
            "nested batches are not allowed"
        );
        Command::new(node.batch_source(), seq, Op::Batch(cmds.into()))
    }

    /// The `(client, req_id)` pair identifying this command.
    pub fn id(&self) -> (NodeId, u64) {
        (self.client, self.req_id)
    }

    /// The batched commands, if this is a batch.
    pub fn as_batch(&self) -> Option<&[Command]> {
        match &self.op {
            Op::Batch(cmds) => Some(cmds),
            _ => None,
        }
    }

    /// How many client commands this command carries: the batch size for
    /// a batch, `1` otherwise. Harnesses use it to price the per-command
    /// apply cost of a committed batch (one agreement, many applies).
    pub fn command_count(&self) -> usize {
        self.as_batch().map_or(1, <[Command]>::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_ordering_is_round_then_node() {
        let a = Ballot::new(1, NodeId(5));
        let b = Ballot::new(2, NodeId(0));
        assert!(a < b);
        let c = Ballot::new(1, NodeId(6));
        assert!(a < c);
        assert_eq!(a, Ballot::new(1, NodeId(5)));
    }

    #[test]
    fn ballot_zero_is_minimum() {
        for round in 1..4u32 {
            for node in 0..4u16 {
                assert!(Ballot::ZERO < Ballot::new(round, NodeId(node)));
            }
        }
        assert!(Ballot::ZERO.is_zero());
        assert!(!Ballot::new(1, NodeId(0)).is_zero());
    }

    #[test]
    fn next_for_is_strictly_greater_for_any_node() {
        let b = Ballot::new(3, NodeId(7));
        for node in 0..10u16 {
            assert!(b.next_for(NodeId(node)) > b);
        }
    }

    #[test]
    fn op_read_classification() {
        assert!(Op::Get { key: 1 }.is_read());
        assert!(!Op::Put { key: 1, value: 2 }.is_read());
        assert!(!Op::Noop.is_read());
    }

    #[test]
    fn command_identity() {
        let c = Command::noop(NodeId(9), 42);
        assert_eq!(c.id(), (NodeId(9), 42));
        assert_eq!(c.op, Op::Noop);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(12).index(), 12);
        assert_eq!(format!("{:?}", NodeId(12)), "n12");
    }

    #[test]
    fn batch_source_namespace_is_disjoint_and_per_node() {
        let a = NodeId(0).batch_source();
        let b = NodeId(7).batch_source();
        assert_ne!(a, b);
        assert!(a.is_batch_source() && b.is_batch_source());
        assert!(!NodeId(0).is_batch_source() && !NodeId(47).is_batch_source());
    }

    #[test]
    fn batch_command_counts_and_exposes_its_payload() {
        let inner = vec![Command::noop(NodeId(9), 1), Command::noop(NodeId(10), 1)];
        let b = Command::batch(NodeId(0), 3, inner.clone());
        assert_eq!(b.id(), (NodeId(0).batch_source(), 3));
        assert_eq!(b.command_count(), 2);
        assert_eq!(b.as_batch(), Some(&inner[..]));
        assert_eq!(Command::noop(NodeId(9), 1).command_count(), 1);
        assert_eq!(Command::noop(NodeId(9), 1).as_batch(), None);
    }

    #[test]
    fn batch_equality_is_structural() {
        let mk = || {
            Command::batch(
                NodeId(1),
                5,
                vec![Command::new(NodeId(9), 2, Op::Put { key: 1, value: 2 })],
            )
        };
        assert_eq!(mk(), mk());
        assert_ne!(mk(), Command::batch(NodeId(1), 5, vec![]));
    }
}
