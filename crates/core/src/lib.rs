//! Agreement protocols for many-core machines viewed as distributed
//! systems — a reproduction of *"Consensus Inside"* (Tudor David, Rachid
//! Guerraoui, Maysam Yabandeh; MIDDLEWARE 2014).
//!
//! The paper studies message-passing agreement **inside** a many-core
//! machine, where the cores replicate shared data and keep the replicas
//! consistent by running an agreement protocol — the approach pioneered by
//! the Barrelfish multikernel. Its contribution is **1Paxos**, a
//! non-blocking consensus protocol built around a *single active acceptor*
//! whose availability comes from backup acceptors rather than replication,
//! roughly halving the number of messages per agreement.
//!
//! # What this crate provides
//!
//! * [`onepaxos`](crate::onepaxos#) — the 1Paxos protocol (§4–§5,
//!   Appendix A), including acceptor switching, leader switching and the
//!   embedded *PaxosUtility* log.
//! * [`multipaxos`] — collapsed Multi-Paxos, the strongest practical
//!   baseline (§2.3).
//! * [`basic_paxos`] — single-decree Basic-Paxos (Synod), also the engine
//!   behind PaxosUtility.
//! * [`twopc`] — 2PC in its agreement form, the blocking baseline used by
//!   Barrelfish (§2.2).
//! * [`mencius`] — Mencius-style multi-leader consensus (§8), the
//!   extension baseline.
//! * [`engine`] — the shared replica-engine layer: one [`ReplicaEngine`]
//!   per deployed node owns timers, commits, replies and the applied
//!   state machine, so every harness is only a transport of
//!   [`EngineEffect`]s.
//! * [`shard`] — key-hash-routed multi-group consensus: a
//!   [`ShardedEngine`] runs S independent engines per node and routes
//!   every command to its owning group, multiplying throughput with
//!   cores while protocol code stays untouched.
//! * [`txn`] — cross-shard atomic transactions: a client-side 2PC
//!   coordinator spanning shard groups, every phase decision agreed by
//!   the participant shard's own log (classic 2PC-over-Paxos).
//! * [`rsm`]/[`kv`] — a replicated-state-machine layer and a key/value
//!   state machine.
//! * [`testnet`] — a deterministic harness for driving the protocols in
//!   tests.
//!
//! All protocols are **sans-IO state machines** implementing [`Protocol`]:
//! handlers consume events and emit [`Action`]s into an [`Outbox`]. The
//! same state machine runs unchanged on the `manycore-sim` discrete-event
//! simulator (which reproduces the paper's 48-core experiments) and on the
//! `onepaxos-runtime` threaded runtime (real shared-memory message passing
//! over `qc-channel`).
//!
//! # Quickstart
//!
//! Drive three 1Paxos replicas to agreement with the deterministic
//! test harness:
//!
//! ```
//! use onepaxos::onepaxos::OnePaxosNode;
//! use onepaxos::testnet::TestNet;
//! use onepaxos::{ClusterConfig, NodeId, Op};
//!
//! let mut net = TestNet::new(3, |members, me| {
//!     OnePaxosNode::new(ClusterConfig::new(members.to_vec(), me))
//! });
//! net.run_to_quiescence(); // leader adoption
//! net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 7 });
//! net.run_to_quiescence();
//! assert_eq!(net.replies().len(), 1);
//! net.assert_consistent();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod basic_paxos;
mod config;
pub mod engine;
pub mod failure;
pub mod kv;
pub mod mencius;
pub mod multipaxos;
pub mod onepaxos;
mod outbox;
mod protocol;
pub mod rsm;
pub mod shard;
pub mod testnet;
pub mod twopc;
pub mod txn;
mod types;
pub mod wire;

pub use config::ClusterConfig;
pub use engine::{
    AdaptiveBatch, BatchConfig, EngineConfig, EngineEffect, EngineEvent, EngineStats,
    ReplicaEngine, ReplyMode,
};
pub use outbox::{Action, Outbox, Timer};
pub use protocol::Protocol;
pub use shard::{ShardId, ShardRouter, ShardedEngine};
pub use txn::{TxnCoordinator, TxnOutcome, TxnStatus};
pub use types::{
    Ballot, BatchPayload, Command, Instance, Nanos, NodeId, Op, TxnId, TxnVote, TxnWrites,
    NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC,
};
