//! The shared replica-engine layer: everything a deployment needs around a
//! sans-IO [`Protocol`] node, in exactly one place.
//!
//! Before this module existed, each harness — [`TestNet`](crate::testnet),
//! the `manycore-sim` cluster and the `onepaxos-runtime` node loop —
//! hand-rolled its own copy of [`Action`] dispatch, timer bookkeeping,
//! commit tracking and reply recording. The paper's portability claim
//! (protocol state machines "can be easily ported to a network system with
//! no change", §6.2) holds for the *protocols*; the engine extends it to
//! the *plumbing*, so a harness is only a transport.
//!
//! # The Event/Effect contract
//!
//! A [`ReplicaEngine`] owns one protocol node plus its timer table, its
//! commit log, the replicated-state-machine [`Applier`] and the per-client
//! reply records. The harness feeds it [`EngineEvent`]s:
//!
//! * [`EngineEvent::Start`] — bootstrap; run once before anything else.
//! * [`EngineEvent::Message`] — a peer message was delivered.
//! * [`EngineEvent::ClientRequest`] — a client submitted a command.
//! * [`EngineEvent::TimerDue`] — a *specific* timer's deadline passed.
//! * [`EngineEvent::Tick`] — fire every timer whose deadline passed.
//!
//! and receives [`EngineEffect`]s back:
//!
//! * [`EngineEffect::SendTo`] — transport this message to that node.
//! * [`EngineEffect::ReplyTo`] — notify this client of its commit (with
//!   the state-machine output when it is already applied).
//! * [`EngineEffect::Committed`] — a slot was decided locally (already
//!   recorded and applied by the engine; emitted for oracles and metrics).
//!
//! Everything stateful in between — arm/cancel/fire ordering of timers,
//! in-order application with at-most-once execution, commit-log
//! consistency checking, deferred replies waiting for a log gap to fill,
//! and the §7.5 local-read fast path — happens inside the engine, behind
//! the single `Action` dispatch in the workspace.
//!
//! # Timers
//!
//! The engine keeps absolute deadlines per [`Timer`]. Re-arming a timer
//! replaces its deadline; cancelling removes it; [`Self::next_deadline`]
//! lets schedulers (the simulator) plan wake-ups. A timer fires at most
//! once per arm: firing disarms it before the handler runs, so a handler
//! re-arming the same timer starts a fresh deadline.
//!
//! # Replies
//!
//! [`ReplyMode::Immediate`] emits [`EngineEffect::ReplyTo`] the moment the
//! protocol requests it (the output is attached when already applied) —
//! the semantics tests and the simulator want. [`ReplyMode::AfterApply`]
//! holds the reply until the command's state-machine output exists, so a
//! real client never observes a commit acknowledgement without its read
//! value — the threaded runtime's contract.
//!
//! # Batching
//!
//! Per-message tx/rx CPU cost — not propagation — is the throughput
//! bottleneck inside a machine (§3). [`BatchConfig`] turns on the
//! engine-side cure: client requests accumulate in the engine and travel
//! through **one** agreement as an [`Op::Batch`] command. A batch opens on
//! the first enqueued request, flushes when it reaches
//! [`BatchConfig::max_commands`] or when [`BatchConfig::max_delay`] has
//! passed (via the ordinary timer table, under the reserved
//! [`BATCH_FLUSH`] timer — so [`Self::next_deadline`] automatically
//! covers a partially filled batch and sleep-until-deadline harnesses
//! cannot stall it). A flushed singleton is submitted as a plain command,
//! so `max_delay` is the only cost batching can add to an idle system.
//!
//! Batches are advocated under the engine's [`NodeId::batch_source`]
//! identity. When a batch this engine advocated commits, the engine fans
//! it back out into per-client [`EngineEffect::ReplyTo`]s (in payload
//! order, honouring the [`ReplyMode`]); the protocol-level reply for the
//! batch identity itself is swallowed. Duplicate requests coalesced into
//! the same batch are submitted once, and the [`Applier`] deduplicates
//! across batches.
//!
//! # Fault injection
//!
//! [`Self::set_blocked`] is the uniform slow-core hook: a blocked engine
//! refuses to fire timers and tells the harness (via [`Self::is_blocked`])
//! to keep inbound messages queued.
//!
//! # Example
//!
//! ```
//! use onepaxos::engine::{EngineEffect, EngineEvent, ReplicaEngine};
//! use onepaxos::kv::KvStore;
//! use onepaxos::twopc::TwoPcNode;
//! use onepaxos::{ClusterConfig, NodeId, Op};
//!
//! // A single-node 2PC group decides immediately: drive one request
//! // through the engine and observe the effect stream.
//! let cfg = ClusterConfig::new(vec![NodeId(0)], NodeId(0));
//! let mut engine = ReplicaEngine::new(TwoPcNode::new(cfg), KvStore::new());
//! let mut effects = Vec::new();
//! engine.handle(EngineEvent::Start, 0, &mut effects);
//! engine.handle(
//!     EngineEvent::ClientRequest { client: NodeId(9), req_id: 1, op: Op::Put { key: 1, value: 7 } },
//!     0,
//!     &mut effects,
//! );
//! assert!(effects.iter().any(|e| matches!(e, EngineEffect::Committed { .. })));
//! assert_eq!(engine.state().get(1), Some(7));
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::outbox::{Action, Outbox, Timer};
use crate::protocol::Protocol;
use crate::rsm::{Applier, StateMachine};
use crate::types::{Command, Instance, Nanos, NodeId, Op};

/// The engine-internal timer driving batch flushes. Reserved: protocols
/// must not arm it (they own [`Timer::Tick`] and the low `Custom` ids);
/// the engine intercepts it before protocol dispatch.
pub const BATCH_FLUSH: Timer = Timer::Custom(u8::MAX);

/// Command-batching knobs (off by default; see the
/// [module docs](self#batching)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush as soon as this many commands are waiting.
    pub max_commands: usize,
    /// Flush when the oldest waiting command is this old, even if the
    /// batch is not full — bounds the latency batching can add.
    pub max_delay: Nanos,
}

impl BatchConfig {
    /// Creates a config flushing at `max_commands` or after `max_delay`.
    ///
    /// # Panics
    ///
    /// Panics if `max_commands` is zero.
    pub fn new(max_commands: usize, max_delay: Nanos) -> Self {
        assert!(max_commands >= 1, "a batch holds at least one command");
        BatchConfig {
            max_commands,
            max_delay,
        }
    }
}

impl Default for BatchConfig {
    /// 8 commands or 20 µs, whichever comes first — a batch deep enough
    /// to amortise the §3 per-message cost, a delay well under typical
    /// client patience.
    fn default() -> Self {
        BatchConfig::new(8, 20_000)
    }
}

/// One input to a [`ReplicaEngine`]: something the outside world did.
#[derive(Clone, Debug)]
pub enum EngineEvent<M> {
    /// Bootstrap the node (runs the protocol's `on_start`).
    Start,
    /// A message from peer `from` was delivered.
    Message {
        /// Sending node.
        from: NodeId,
        /// The protocol message.
        msg: M,
    },
    /// A client submitted operation `op` as `(client, req_id)`.
    ClientRequest {
        /// Originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// Operation to replicate.
        op: Op,
    },
    /// The deadline of `timer` passed; fire it if it is still armed.
    TimerDue {
        /// Which timer.
        timer: Timer,
    },
    /// Fire every armed timer whose deadline is at or before `now`.
    Tick,
}

/// One output of a [`ReplicaEngine`]: something the harness must transport.
///
/// `M` is the protocol's wire message type, `O` the state machine's output
/// type ([`StateMachine::Output`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineEffect<M, O> {
    /// Deliver `msg` to node `to` (self-sends included; harnesses deliver
    /// them without transmission cost, §2.3 footnote 5).
    SendTo {
        /// Destination node.
        to: NodeId,
        /// Protocol message.
        msg: M,
    },
    /// Acknowledge to `client` that `(client, req_id)` committed in
    /// `instance`. `value` carries the state-machine output when the
    /// command has already been applied locally (always, under
    /// [`ReplyMode::AfterApply`]).
    ReplyTo {
        /// Client to notify.
        client: NodeId,
        /// The client's request id.
        req_id: u64,
        /// Slot in which the command committed.
        instance: Instance,
        /// State-machine output, when already applied.
        value: Option<O>,
    },
    /// Slot `instance` was decided locally with `cmd`. The engine has
    /// already recorded and applied it; harnesses use this for global
    /// consistency oracles and commit metrics.
    Committed {
        /// Decided slot.
        instance: Instance,
        /// Decided command.
        cmd: Command,
    },
}

/// When [`EngineEffect::ReplyTo`] is emitted relative to application.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplyMode {
    /// Emit the reply the moment the protocol requests it; `value` is
    /// attached opportunistically. The deterministic harnesses use this.
    #[default]
    Immediate,
    /// Hold the reply until the command's output has been applied, so the
    /// acknowledgement always carries the value. The threaded runtime
    /// uses this (a log gap must not produce a value-less reply).
    AfterApply,
}

/// A recorded client reply (who was answered, for what, from where).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplyRecord {
    /// The client that was answered.
    pub client: NodeId,
    /// The request id that committed.
    pub req_id: u64,
    /// The slot it committed in.
    pub instance: Instance,
    /// The node that produced the reply.
    pub from: NodeId,
}

/// A state machine whose current value for a key can be read without
/// going through the replicated log — the engine-side half of the §7.5
/// relaxed-read fast path (the protocol-side half is
/// [`Protocol::can_read_locally`]).
pub trait LocalRead: StateMachine {
    /// Reads `key` from the local replica without recording an applied
    /// operation.
    fn read_local(&self, key: u64) -> Self::Output;
}

impl LocalRead for crate::kv::KvStore {
    fn read_local(&self, key: u64) -> Self::Output {
        self.get(key)
    }
}

/// One protocol node plus all of its deployment plumbing; see the
/// [module docs](self) for the Event/Effect contract.
#[derive(Debug)]
pub struct ReplicaEngine<P: Protocol, S: StateMachine> {
    node: P,
    applier: Applier<S>,
    /// Absolute deadline per armed timer.
    timers: BTreeMap<Timer, Nanos>,
    /// Local commit log (instance → decided command); only populated
    /// while `record_history` is on.
    commits: BTreeMap<Instance, Command>,
    /// Every reply emitted by this node, in emission order; only
    /// populated while `record_history` is on.
    replies: Vec<ReplyRecord>,
    /// Replies waiting for the state machine to catch up (AfterApply).
    deferred: Vec<(NodeId, u64, Instance)>,
    blocked: bool,
    reply_mode: ReplyMode,
    /// Whether to retain the commit log and reply records. Test harnesses
    /// assert on them; long-running deployments (the simulator, the
    /// threaded runtime) turn recording off so memory stays bounded.
    record_history: bool,
    /// Command-batching knobs; `None` = every request is its own
    /// agreement.
    batch: Option<BatchConfig>,
    /// Requests waiting for the current batch to flush.
    batch_buf: Vec<Command>,
    /// Sequence number of the next batch this engine advocates.
    batch_seq: u64,
    /// Batches advocated but not yet committed-and-fanned-out, so a
    /// re-decided batch cannot fan its replies out twice.
    inflight_batches: BTreeSet<u64>,
    /// The consensus group this engine belongs to in a sharded
    /// deployment, if any; diagnostics only (safety-violation panics name
    /// the shard so multi-group harness failures localize).
    shard: Option<crate::shard::ShardId>,
    /// Reusable action buffer handed to protocol handlers.
    outbox: Outbox<P::Msg>,
}

impl<P: Protocol, S: StateMachine> ReplicaEngine<P, S> {
    /// Wraps `node` and a fresh `state` replica, replying
    /// [immediately](ReplyMode::Immediate).
    pub fn new(node: P, state: S) -> Self {
        Self::with_reply_mode(node, state, ReplyMode::Immediate)
    }

    /// Wraps `node` with an explicit [`ReplyMode`].
    pub fn with_reply_mode(node: P, state: S, reply_mode: ReplyMode) -> Self {
        ReplicaEngine {
            node,
            applier: Applier::new(state),
            timers: BTreeMap::new(),
            commits: BTreeMap::new(),
            replies: Vec::new(),
            deferred: Vec::new(),
            blocked: false,
            reply_mode,
            record_history: true,
            batch: None,
            batch_buf: Vec::new(),
            batch_seq: 0,
            inflight_batches: BTreeSet::new(),
            shard: None,
            outbox: Outbox::new(),
        }
    }

    /// Labels this engine with the shard (consensus group) it serves in a
    /// sharded deployment (see [`crate::shard::ShardedEngine`]). Purely
    /// diagnostic: consistency panics name the shard.
    pub fn with_shard(mut self, shard: crate::shard::ShardId) -> Self {
        self.shard = Some(shard);
        self
    }

    /// The shard label, if this engine is part of a sharded deployment.
    pub fn shard(&self) -> Option<crate::shard::ShardId> {
        self.shard
    }

    /// Enables command batching with `cfg` (see the
    /// [module docs](self#batching)).
    pub fn with_batching(mut self, cfg: BatchConfig) -> Self {
        self.set_batching(Some(cfg));
        self
    }

    /// Enables (`Some`) or disables (`None`) command batching. Call only
    /// while no batch is accumulating (e.g. before the first request):
    /// disabling with requests buffered would strand them.
    ///
    /// # Panics
    ///
    /// Panics if requests are currently buffered.
    pub fn set_batching(&mut self, cfg: Option<BatchConfig>) {
        assert!(
            self.batch_buf.is_empty(),
            "cannot reconfigure batching with {} requests buffered",
            self.batch_buf.len()
        );
        self.batch = cfg;
    }

    /// The active batching config, if batching is on.
    pub fn batching(&self) -> Option<BatchConfig> {
        self.batch
    }

    /// Number of requests waiting in the open batch.
    pub fn pending_batch(&self) -> usize {
        self.batch_buf.len()
    }

    /// Raises the batch sequence number to at least `floor`.
    ///
    /// Batch identities are `(batch_source, seq)` and the protocols
    /// deduplicate decided identities forever — so a deployment that
    /// **rebuilds** an engine in place (the paper's silently rebooted
    /// node) must move the replacement into a fresh sequence epoch, or
    /// its recycled batch ids would be dropped as already-decided
    /// duplicates by surviving peers and the batched clients would never
    /// be answered. `TestNet::reset_node` shifts each incarnation by
    /// [`Self::BATCH_EPOCH`]; long-running deployments without in-place
    /// rebuilds never need this.
    pub fn set_batch_seq_floor(&mut self, floor: u64) {
        self.batch_seq = self.batch_seq.max(floor);
    }

    /// Sequence-number span reserved per engine incarnation (2^32
    /// batches) for [`Self::set_batch_seq_floor`].
    pub const BATCH_EPOCH: u64 = 1 << 32;

    /// Enables or disables commit-log and reply-record retention
    /// (default on). Turn it off for long-running deployments: duplicate
    /// decisions are still checked by the [`Applier`] either way, but the
    /// per-command history is not retained, so memory stays bounded by
    /// live state rather than by run length.
    pub fn with_history(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// Feeds one event to the node at time `now`, appending the resulting
    /// effects to `effects`.
    ///
    /// Blocked engines still process events handed to them — blocking
    /// gates *delivery* (the harness holds messages back, checked via
    /// [`Self::is_blocked`]) and *timer firing*, not explicit calls.
    pub fn handle(
        &mut self,
        event: EngineEvent<P::Msg>,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) {
        match event {
            EngineEvent::Start => {
                self.node.on_start(now, &mut self.outbox);
                self.absorb(now, effects);
            }
            EngineEvent::Message { from, msg } => {
                self.node.on_message(from, msg, now, &mut self.outbox);
                self.absorb(now, effects);
            }
            EngineEvent::ClientRequest { client, req_id, op } => {
                // Pre-built batches bypass the accumulator (never nest).
                if self.batch.is_some() && !matches!(op, Op::Batch(_)) {
                    self.enqueue_batched(client, req_id, op, now, effects);
                } else {
                    self.node
                        .on_client_request(client, req_id, op, now, &mut self.outbox);
                    self.absorb(now, effects);
                }
            }
            EngineEvent::TimerDue { timer } => {
                self.fire_one(timer, now, effects);
            }
            EngineEvent::Tick => {
                self.fire_due(now, effects);
            }
        }
    }

    /// Fires every armed timer whose deadline is at or before `now`, in
    /// [`Timer`] order; returns how many fired. A blocked engine fires
    /// nothing (the slow core is not getting cycles).
    ///
    /// The due set is computed before any handler runs, so a handler
    /// re-arming its own timer (the periodic-tick pattern) cannot make it
    /// fire twice in one call — but each timer's armed state is
    /// re-checked just before it fires, so a handler cancelling or
    /// re-arming a *sibling* due timer takes effect within the same pass
    /// (identical to delivering each deadline via
    /// [`EngineEvent::TimerDue`]).
    pub fn fire_due(
        &mut self,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) -> usize {
        if self.blocked {
            return 0;
        }
        let due: Vec<Timer> = self
            .timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&t, _)| t)
            .collect();
        let mut fired = 0;
        for &t in &due {
            match self.timers.get(&t) {
                Some(&at) if at <= now => {}
                _ => continue, // cancelled or pushed out by an earlier handler
            }
            self.timers.remove(&t);
            if t == BATCH_FLUSH {
                self.flush_batch(now, effects);
            } else {
                self.node.on_timer(t, now, &mut self.outbox);
                self.absorb(now, effects);
            }
            fired += 1;
        }
        fired
    }

    fn fire_one(
        &mut self,
        timer: Timer,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) -> bool {
        if self.blocked {
            return false;
        }
        match self.timers.get(&timer) {
            Some(&at) if at <= now => {}
            _ => return false, // cancelled, re-armed later, or never armed
        }
        self.timers.remove(&timer);
        if timer == BATCH_FLUSH {
            self.flush_batch(now, effects);
        } else {
            self.node.on_timer(timer, now, &mut self.outbox);
            self.absorb(now, effects);
        }
        true
    }

    // ----------------------------------------------------------------
    // Batching (see the module docs).
    // ----------------------------------------------------------------

    /// Adds one request to the open batch, opening it (and arming the
    /// flush deadline) if necessary, and flushing when full.
    fn enqueue_batched(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) {
        let cfg = self.batch.expect("checked by the caller");
        if self
            .batch_buf
            .iter()
            .any(|c| c.client == client && c.req_id == req_id)
        {
            return; // a retry of a request already waiting in this batch
        }
        if self.batch_buf.is_empty() {
            self.timers.insert(BATCH_FLUSH, now + cfg.max_delay);
        }
        self.batch_buf.push(Command::new(client, req_id, op));
        if self.batch_buf.len() >= cfg.max_commands {
            self.flush_batch(now, effects);
        }
    }

    /// Hands the accumulated batch to the protocol as one agreement (or
    /// as a plain command, if only one request is waiting) and disarms
    /// the flush deadline.
    fn flush_batch(&mut self, now: Nanos, effects: &mut Vec<EngineEffect<P::Msg, S::Output>>) {
        self.timers.remove(&BATCH_FLUSH);
        if self.batch_buf.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.batch_buf);
        if cmds.len() == 1 {
            // A singleton batch is indistinguishable from an unbatched
            // command: no synthetic identity, no fan-out bookkeeping.
            let c = cmds.into_iter().next().expect("len checked");
            self.node
                .on_client_request(c.client, c.req_id, c.op, now, &mut self.outbox);
        } else {
            self.batch_seq += 1;
            let batch = Command::batch(self.node.node_id(), self.batch_seq, cmds);
            self.inflight_batches.insert(self.batch_seq);
            self.node.on_client_request(
                batch.client,
                batch.req_id,
                batch.op,
                now,
                &mut self.outbox,
            );
        }
        self.absorb(now, effects);
    }

    /// The single `Action` dispatch of the workspace: drains the node's
    /// outbox into engine state and harness-facing effects.
    fn absorb(&mut self, now: Nanos, effects: &mut Vec<EngineEffect<P::Msg, S::Output>>) {
        for action in self.outbox.take() {
            match action {
                Action::Send { to, msg } => effects.push(EngineEffect::SendTo { to, msg }),
                Action::Reply {
                    client,
                    req_id,
                    instance,
                } => self.reply(client, req_id, instance, effects),
                Action::Commit { instance, cmd } => {
                    if self.record_history {
                        let me = self.node.node_id();
                        let prior = self.commits.insert(instance, cmd.clone());
                        if let Some(prior) = prior {
                            let group = self
                                .shard
                                .map_or(String::new(), |s| format!(" (shard {s})"));
                            assert_eq!(
                                prior, cmd,
                                "{me}{group} re-learned instance {instance} with a different command"
                            );
                        }
                    }
                    // The applier independently rejects a re-decided
                    // instance with a different command, so safety
                    // checking does not depend on the history log.
                    self.applier.on_decided(instance, cmd.clone());
                    // A committed batch that *this* engine advocated fans
                    // back out into per-client replies, exactly once (a
                    // re-decided batch finds its inflight entry gone).
                    let fan_out: Vec<(NodeId, u64)> = match cmd.as_batch() {
                        Some(inner)
                            if cmd.client == self.node.node_id().batch_source()
                                && self.inflight_batches.remove(&cmd.req_id) =>
                        {
                            inner.iter().map(|c| (c.client, c.req_id)).collect()
                        }
                        _ => Vec::new(),
                    };
                    effects.push(EngineEffect::Committed { instance, cmd });
                    self.flush_deferred(effects);
                    for (client, req_id) in fan_out {
                        self.reply(client, req_id, instance, effects);
                    }
                }
                Action::SetTimer { timer, after } => {
                    self.timers.insert(timer, now + after);
                }
                Action::CancelTimer { timer } => {
                    self.timers.remove(&timer);
                }
            }
        }
    }

    fn reply(
        &mut self,
        client: NodeId,
        req_id: u64,
        instance: Instance,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) {
        if client.is_batch_source() {
            // The protocol acknowledging a batch to its synthetic
            // advocate (possibly another engine's): per-client replies
            // are fanned out at commit time by the advocating engine, so
            // this must never reach a real wire or the records.
            return;
        }
        let value = self.applier.output_of(client, req_id).cloned();
        if value.is_none() && self.reply_mode == ReplyMode::AfterApply {
            self.deferred.push((client, req_id, instance));
            return;
        }
        if self.record_history {
            self.replies.push(ReplyRecord {
                client,
                req_id,
                instance,
                from: self.node.node_id(),
            });
        }
        effects.push(EngineEffect::ReplyTo {
            client,
            req_id,
            instance,
            value,
        });
    }

    /// Retries deferred replies after new commands were applied. Each is
    /// re-run through [`Self::reply`], which emits it when the output now
    /// exists and re-defers it otherwise.
    fn flush_deferred(&mut self, effects: &mut Vec<EngineEffect<P::Msg, S::Output>>) {
        if self.deferred.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.deferred);
        for (client, req_id, instance) in pending {
            self.reply(client, req_id, instance, effects);
        }
    }

    // ----------------------------------------------------------------
    // Timer table.
    // ----------------------------------------------------------------

    /// The earliest armed deadline, if any (for harness wake-up planning).
    ///
    /// Includes a pending batch-flush deadline: the accumulator arms the
    /// reserved [`BATCH_FLUSH`] timer in this same table, so a harness
    /// that sleeps until `next_deadline` can never stall a partially
    /// filled batch.
    pub fn next_deadline(&self) -> Option<Nanos> {
        self.timers.values().copied().min()
    }

    /// The absolute deadline `timer` is armed for, if armed.
    pub fn timer_deadline(&self, timer: Timer) -> Option<Nanos> {
        self.timers.get(&timer).copied()
    }

    // ----------------------------------------------------------------
    // Fault injection.
    // ----------------------------------------------------------------

    /// Marks this replica as a blocked/slow core (or unblocks it).
    /// Blocked engines fire no timers; harnesses must also hold back
    /// message delivery while [`Self::is_blocked`] returns `true`.
    pub fn set_blocked(&mut self, blocked: bool) {
        self.blocked = blocked;
    }

    /// Whether this replica is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    // ----------------------------------------------------------------
    // Local reads (§7.5).
    // ----------------------------------------------------------------

    /// Whether the wrapped protocol ever serves reads locally.
    pub fn supports_local_reads(&self) -> bool {
        self.node.supports_local_reads()
    }

    /// Whether `key` is readable from the local replica *right now*
    /// (e.g. 2PC outside its lock window).
    pub fn can_read_locally(&self, key: u64) -> bool {
        self.node.can_read_locally(key)
    }

    /// Serves a relaxed read of `key` from the local replica, without any
    /// agreement traffic, if the protocol currently allows it.
    pub fn local_read(&self, key: u64) -> Option<S::Output>
    where
        S: LocalRead,
    {
        self.can_read_locally(key)
            .then(|| self.applier.state().read_local(key))
    }

    // ----------------------------------------------------------------
    // Accessors.
    // ----------------------------------------------------------------

    /// The wrapped protocol node.
    pub fn node(&self) -> &P {
        &self.node
    }

    /// Mutable access to the node (white-box assertions in tests).
    pub fn node_mut(&mut self) -> &mut P {
        &mut self.node
    }

    /// The replicated-state-machine applier.
    pub fn applier(&self) -> &Applier<S> {
        &self.applier
    }

    /// The applied state machine.
    pub fn state(&self) -> &S {
        self.applier.state()
    }

    /// The local commit log (instance → decided command). Empty when
    /// history recording is off ([`Self::with_history`]).
    pub fn commits(&self) -> &BTreeMap<Instance, Command> {
        &self.commits
    }

    /// Every reply this node has emitted, in emission order. Empty when
    /// history recording is off ([`Self::with_history`]).
    pub fn replies(&self) -> &[ReplyRecord] {
        &self.replies
    }

    /// Replies currently waiting for the state machine to catch up
    /// (only non-empty under [`ReplyMode::AfterApply`]).
    pub fn deferred_replies(&self) -> usize {
        self.deferred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvStore;

    /// A scripted protocol: handlers replay queued actions, so tests can
    /// exercise engine semantics without a real consensus protocol.
    struct Scripted {
        me: NodeId,
        /// Actions to emit on the next handler invocation.
        script: Vec<Action<u8>>,
        timer_fires: Vec<(Timer, Nanos)>,
        readable: bool,
    }

    impl Scripted {
        fn new() -> Self {
            Scripted {
                me: NodeId(0),
                script: Vec::new(),
                timer_fires: Vec::new(),
                readable: false,
            }
        }
    }

    impl Protocol for Scripted {
        type Msg = u8;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, out: &mut Outbox<u8>) {
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn on_message(&mut self, _from: NodeId, _msg: u8, _now: Nanos, out: &mut Outbox<u8>) {
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn on_timer(&mut self, timer: Timer, now: Nanos, out: &mut Outbox<u8>) {
            self.timer_fires.push((timer, now));
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn on_client_request(
            &mut self,
            _client: NodeId,
            _req_id: u64,
            _op: Op,
            _now: Nanos,
            out: &mut Outbox<u8>,
        ) {
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn is_leader(&self) -> bool {
            true
        }

        fn leader_hint(&self) -> Option<NodeId> {
            Some(self.me)
        }

        fn supports_local_reads(&self) -> bool {
            true
        }

        fn can_read_locally(&self, _key: u64) -> bool {
            self.readable
        }
    }

    type E = ReplicaEngine<Scripted, KvStore>;
    type Fx = Vec<EngineEffect<u8, Option<u64>>>;

    fn engine() -> E {
        ReplicaEngine::new(Scripted::new(), KvStore::new())
    }

    fn drive(e: &mut E, actions: Vec<Action<u8>>, now: Nanos) -> Fx {
        e.node_mut().script = actions;
        let mut fx = Vec::new();
        e.handle(
            EngineEvent::Message {
                from: NodeId(1),
                msg: 0,
            },
            now,
            &mut fx,
        );
        fx
    }

    #[test]
    fn rearm_replaces_the_deadline() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 100,
            }],
            0,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), Some(100));
        // Re-arm at a later deadline: the old one must not fire.
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 500,
            }],
            50,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), Some(550));
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(100, &mut fx), 0, "superseded deadline fired");
        assert_eq!(e.fire_due(550, &mut fx), 1);
        assert_eq!(e.node().timer_fires, vec![(Timer::Tick, 550)]);
    }

    #[test]
    fn cancel_after_set_wins_and_set_after_cancel_wins() {
        let mut e = engine();
        // Same handler: arm then cancel → not armed.
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 10,
                },
                Action::CancelTimer { timer: Timer::Tick },
            ],
            0,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), None);
        // Same handler: cancel then arm → armed.
        drive(
            &mut e,
            vec![
                Action::CancelTimer { timer: Timer::Tick },
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 10,
                },
            ],
            0,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), Some(10));
    }

    #[test]
    fn fired_timer_is_disarmed_and_rearm_in_handler_is_fresh() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 100,
            }],
            0,
        );
        // The handler re-arms the same timer; it must not re-fire in the
        // same fire_due pass.
        e.node_mut().script = vec![Action::SetTimer {
            timer: Timer::Tick,
            after: 100,
        }];
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(1_000, &mut fx), 1);
        assert_eq!(e.timer_deadline(Timer::Tick), Some(1_100));
        // One-shot semantics: without a re-arm nothing is left.
        assert_eq!(e.fire_due(1_100, &mut fx), 1);
        assert_eq!(e.fire_due(10_000, &mut fx), 0);
    }

    #[test]
    fn timers_fire_in_timer_order() {
        let mut e = engine();
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Custom(2),
                    after: 5,
                },
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 10,
                },
                Action::SetTimer {
                    timer: Timer::Custom(1),
                    after: 7,
                },
            ],
            0,
        );
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(100, &mut fx), 3);
        let order: Vec<Timer> = e.node().timer_fires.iter().map(|&(t, _)| t).collect();
        assert_eq!(order, vec![Timer::Tick, Timer::Custom(1), Timer::Custom(2)]);
    }

    #[test]
    fn handler_cancelling_a_sibling_due_timer_takes_effect_in_the_same_pass() {
        let mut e = engine();
        // Tick and Custom(0) both due at 100; Tick fires first (Timer
        // order) and its handler cancels Custom(0) and re-arms Custom(1)
        // far in the future.
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 100,
                },
                Action::SetTimer {
                    timer: Timer::Custom(0),
                    after: 100,
                },
                Action::SetTimer {
                    timer: Timer::Custom(1),
                    after: 100,
                },
            ],
            0,
        );
        e.node_mut().script = vec![
            Action::CancelTimer {
                timer: Timer::Custom(0),
            },
            Action::SetTimer {
                timer: Timer::Custom(1),
                after: 10_000,
            },
        ];
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(100, &mut fx), 1, "only Tick may fire");
        assert_eq!(e.node().timer_fires, vec![(Timer::Tick, 100)]);
        assert_eq!(e.timer_deadline(Timer::Custom(0)), None);
        assert_eq!(e.timer_deadline(Timer::Custom(1)), Some(10_100));
    }

    #[test]
    fn timer_due_ignores_stale_and_unarmed_deadlines() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 100,
            }],
            0,
        );
        let mut fx = Vec::new();
        // Not yet due.
        e.handle(EngineEvent::TimerDue { timer: Timer::Tick }, 99, &mut fx);
        assert!(e.node().timer_fires.is_empty());
        // Due.
        e.handle(EngineEvent::TimerDue { timer: Timer::Tick }, 100, &mut fx);
        assert_eq!(e.node().timer_fires.len(), 1);
        // Already fired: a second due notification is stale.
        e.handle(EngineEvent::TimerDue { timer: Timer::Tick }, 200, &mut fx);
        assert_eq!(e.node().timer_fires.len(), 1);
    }

    #[test]
    fn blocked_engine_fires_no_timers() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 10,
            }],
            0,
        );
        e.set_blocked(true);
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(1_000, &mut fx), 0);
        e.set_blocked(false);
        assert_eq!(e.fire_due(1_000, &mut fx), 1);
    }

    fn put(client: u16, req: u64, key: u64, value: u64) -> Command {
        Command::new(NodeId(client), req, Op::Put { key, value })
    }

    #[test]
    fn duplicate_client_request_applies_once() {
        let mut e = engine();
        // The same (client, req) decided in two instances: the client
        // retried and two advocates won slots. Applied exactly once.
        drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 5, 50),
                },
                Action::Commit {
                    instance: 1,
                    cmd: put(9, 1, 5, 50),
                },
                Action::Commit {
                    instance: 2,
                    cmd: put(9, 2, 5, 60),
                },
            ],
            0,
        );
        assert_eq!(e.state().writes(), 2, "duplicate must not re-apply");
        assert_eq!(e.state().get(5), Some(60));
        assert_eq!(e.commits().len(), 3);
    }

    #[test]
    fn relearn_same_command_is_idempotent() {
        let mut e = engine();
        let fx = drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 1, 10),
                },
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 1, 10),
                },
            ],
            0,
        );
        // Both learns surface for oracles/metrics, but state applied once.
        let commits = fx
            .iter()
            .filter(|e| matches!(e, EngineEffect::Committed { .. }))
            .count();
        assert_eq!(commits, 2);
        assert_eq!(e.state().writes(), 1);
    }

    #[test]
    #[should_panic(expected = "re-learned instance 0 with a different command")]
    fn relearn_different_command_panics() {
        let mut e = engine();
        drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 1, 10),
                },
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 2, 1, 20),
                },
            ],
            0,
        );
    }

    #[test]
    fn reply_records_are_idempotent_per_request() {
        let mut e = engine();
        drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 3, 30),
                },
                Action::Reply {
                    client: NodeId(9),
                    req_id: 1,
                    instance: 0,
                },
            ],
            0,
        );
        // A duplicate request is re-answered (e.g. Mencius answering from
        // its decided-id table): same instance, same value, twice in the
        // record — identical content, no double application.
        let fx = drive(
            &mut e,
            vec![Action::Reply {
                client: NodeId(9),
                req_id: 1,
                instance: 0,
            }],
            0,
        );
        assert_eq!(e.replies().len(), 2);
        assert_eq!(e.replies()[0], e.replies()[1]);
        match &fx[0] {
            EngineEffect::ReplyTo {
                instance, value, ..
            } => {
                assert_eq!(*instance, 0);
                assert_eq!(*value, Some(None)); // Put output: no prior value
            }
            other => panic!("expected ReplyTo, got {other:?}"),
        }
        assert_eq!(e.state().writes(), 1);
    }

    #[test]
    fn after_apply_defers_replies_across_log_gaps() {
        let mut e =
            ReplicaEngine::with_reply_mode(Scripted::new(), KvStore::new(), ReplyMode::AfterApply);
        // Instance 1 decided and replied-to before instance 0 exists: the
        // reply must wait for the gap to fill.
        let fx = drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 1,
                    cmd: put(9, 2, 7, 70),
                },
                Action::Reply {
                    client: NodeId(9),
                    req_id: 2,
                    instance: 1,
                },
            ],
            0,
        );
        assert!(
            !fx.iter().any(|e| matches!(e, EngineEffect::ReplyTo { .. })),
            "reply leaked across a log gap"
        );
        assert_eq!(e.deferred_replies(), 1);
        // Filling the gap applies both commands and releases the reply,
        // with the output attached.
        let fx = drive(
            &mut e,
            vec![Action::Commit {
                instance: 0,
                cmd: put(9, 1, 7, 60),
            }],
            0,
        );
        let reply = fx
            .iter()
            .find_map(|e| match e {
                EngineEffect::ReplyTo { req_id, value, .. } => Some((*req_id, *value)),
                _ => None,
            })
            .expect("deferred reply released");
        assert_eq!(reply, (2, Some(Some(60)))); // Put returns prior value
        assert_eq!(e.deferred_replies(), 0);
    }

    #[test]
    fn immediate_mode_replies_without_the_value() {
        let mut e = engine();
        let fx = drive(
            &mut e,
            vec![Action::Reply {
                client: NodeId(9),
                req_id: 1,
                instance: 4,
            }],
            0,
        );
        match &fx[0] {
            EngineEffect::ReplyTo { value, .. } => assert_eq!(*value, None),
            other => panic!("expected ReplyTo, got {other:?}"),
        }
    }

    #[test]
    fn local_read_is_gated_by_the_protocol() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::Commit {
                instance: 0,
                cmd: put(9, 1, 2, 22),
            }],
            0,
        );
        e.node_mut().readable = false;
        assert_eq!(e.local_read(2), None, "lock window must block the read");
        e.node_mut().readable = true;
        assert_eq!(e.local_read(2), Some(Some(22)));
        assert_eq!(e.local_read(99), Some(None));
        // Reads through the fast path are not applied operations.
        assert_eq!(e.state().reads(), 0);
    }

    #[test]
    fn history_off_keeps_no_records_but_still_applies_and_replies() {
        let mut e = ReplicaEngine::new(Scripted::new(), KvStore::new()).with_history(false);
        let fx = drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 3, 30),
                },
                Action::Reply {
                    client: NodeId(9),
                    req_id: 1,
                    instance: 0,
                },
            ],
            0,
        );
        // Effects and state-machine application are unaffected...
        assert!(fx
            .iter()
            .any(|e| matches!(e, EngineEffect::Committed { .. })));
        assert!(fx.iter().any(|e| matches!(e, EngineEffect::ReplyTo { .. })));
        assert_eq!(e.state().get(3), Some(30));
        // ...but no per-command history is retained.
        assert!(e.commits().is_empty());
        assert!(e.replies().is_empty());
        // The applier still rejects a divergent re-decide on its own.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive(
                &mut e,
                vec![Action::Commit {
                    instance: 0,
                    cmd: put(9, 2, 3, 31),
                }],
                0,
            );
        }));
        assert!(result.is_err(), "divergent re-decide must still panic");
    }

    /// A protocol that instantly decides whatever it is asked to
    /// advocate: one agreement (commit + reply) per `on_client_request`.
    /// Exactly what batch-semantics tests need — the number of
    /// `on_client_request` invocations *is* the number of agreements.
    struct Deciding {
        me: NodeId,
        next: Instance,
        /// Every advocated (client, req_id) in submission order.
        requests: Vec<(NodeId, u64)>,
        /// Last decision, replayable via `on_message` (a duplicate learn).
        last: Option<(Instance, Command)>,
    }

    impl Deciding {
        fn new() -> Self {
            Deciding {
                me: NodeId(0),
                next: 0,
                requests: Vec::new(),
                last: None,
            }
        }
    }

    impl Protocol for Deciding {
        type Msg = u8;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, _out: &mut Outbox<u8>) {}

        fn on_message(&mut self, _from: NodeId, _msg: u8, _now: Nanos, out: &mut Outbox<u8>) {
            // A duplicate learn of the last decision.
            if let Some((inst, cmd)) = self.last.clone() {
                out.commit(inst, cmd.clone());
                out.reply(cmd.client, cmd.req_id, inst);
            }
        }

        fn on_timer(&mut self, _timer: Timer, _now: Nanos, _out: &mut Outbox<u8>) {}

        fn on_client_request(
            &mut self,
            client: NodeId,
            req_id: u64,
            op: Op,
            _now: Nanos,
            out: &mut Outbox<u8>,
        ) {
            self.requests.push((client, req_id));
            let cmd = Command::new(client, req_id, op);
            let inst = self.next;
            self.next += 1;
            self.last = Some((inst, cmd.clone()));
            out.commit(inst, cmd);
            out.reply(client, req_id, inst);
        }

        fn is_leader(&self) -> bool {
            true
        }

        fn leader_hint(&self) -> Option<NodeId> {
            Some(self.me)
        }
    }

    type D = ReplicaEngine<Deciding, KvStore>;

    fn batched(cfg: BatchConfig) -> D {
        ReplicaEngine::new(Deciding::new(), KvStore::new()).with_batching(cfg)
    }

    fn request(e: &mut D, client: u16, req_id: u64, op: Op, now: Nanos) -> Fx {
        let mut fx = Vec::new();
        e.handle(
            EngineEvent::ClientRequest {
                client: NodeId(client),
                req_id,
                op,
            },
            now,
            &mut fx,
        );
        fx
    }

    fn reply_ids(fx: &Fx) -> Vec<(NodeId, u64)> {
        fx.iter()
            .filter_map(|e| match e {
                EngineEffect::ReplyTo { client, req_id, .. } => Some((*client, *req_id)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn batch_flushes_on_max_size_as_one_agreement() {
        let mut e = batched(BatchConfig::new(3, 1_000_000));
        assert!(request(&mut e, 9, 1, Op::Put { key: 1, value: 10 }, 0).is_empty());
        assert!(request(&mut e, 10, 1, Op::Put { key: 2, value: 20 }, 0).is_empty());
        assert_eq!(e.pending_batch(), 2);
        let fx = request(&mut e, 11, 1, Op::Get { key: 1 }, 0);
        // One protocol-level agreement carried all three commands…
        assert_eq!(e.node().requests.len(), 1);
        assert_eq!(
            fx.iter()
                .filter(|f| matches!(f, EngineEffect::Committed { .. }))
                .count(),
            1
        );
        // …and fanned out per-client replies in submission order.
        assert_eq!(
            reply_ids(&fx),
            vec![(NodeId(9), 1), (NodeId(10), 1), (NodeId(11), 1)]
        );
        assert_eq!(e.pending_batch(), 0);
        assert_eq!(e.state().get(1), Some(10));
        assert_eq!(e.state().get(2), Some(20));
        // The Get inside the batch saw the preceding Put.
        match &fx[3] {
            EngineEffect::ReplyTo { value, .. } => assert_eq!(*value, Some(Some(10))),
            other => panic!("expected the Get's reply, got {other:?}"),
        }
    }

    #[test]
    fn batch_flushes_on_deadline_via_the_timer_table() {
        let mut e = batched(BatchConfig::new(100, 500));
        request(&mut e, 9, 1, Op::Noop, 0);
        request(&mut e, 10, 1, Op::Noop, 10);
        // The flush deadline is a real timer: next_deadline covers it, so
        // sleep-until-next-deadline harnesses cannot stall the batch.
        assert_eq!(e.next_deadline(), Some(500));
        assert_eq!(e.timer_deadline(BATCH_FLUSH), Some(500));
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(499, &mut fx), 0);
        assert!(fx.is_empty());
        assert_eq!(e.fire_due(500, &mut fx), 1);
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1), (NodeId(10), 1)]);
        assert_eq!(e.node().requests.len(), 1);
        assert_eq!(e.next_deadline(), None, "flush disarms the deadline");
    }

    #[test]
    fn singleton_batch_is_submitted_as_an_unbatched_command() {
        let mut e = batched(BatchConfig::new(8, 500));
        request(&mut e, 9, 1, Op::Put { key: 7, value: 70 }, 0);
        let mut fx = Vec::new();
        e.fire_due(500, &mut fx);
        // The protocol saw the client's own identity, not a batch source.
        assert_eq!(e.node().requests, vec![(NodeId(9), 1)]);
        match &fx[0] {
            EngineEffect::Committed { cmd, .. } => {
                assert_eq!(cmd.as_batch(), None);
                assert_eq!(cmd.id(), (NodeId(9), 1));
            }
            other => panic!("expected Committed, got {other:?}"),
        }
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1)]);
        assert_eq!(e.replies().len(), 1);
        assert_eq!(e.state().get(7), Some(70));
    }

    #[test]
    fn duplicate_request_inside_a_batch_is_submitted_once() {
        let mut e = batched(BatchConfig::new(100, 500));
        request(&mut e, 9, 1, Op::Put { key: 1, value: 1 }, 0);
        request(&mut e, 9, 1, Op::Put { key: 1, value: 1 }, 5); // client retry
        request(&mut e, 10, 1, Op::Noop, 10);
        assert_eq!(e.pending_batch(), 2, "retry coalesced away");
        let mut fx = Vec::new();
        e.fire_due(500, &mut fx);
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1), (NodeId(10), 1)]);
        assert_eq!(e.state().writes(), 1);
    }

    #[test]
    fn redecided_batch_does_not_fan_replies_out_twice() {
        let mut e = batched(BatchConfig::new(2, 1_000));
        request(&mut e, 9, 1, Op::Noop, 0);
        let fx = request(&mut e, 10, 1, Op::Noop, 0);
        assert_eq!(reply_ids(&fx).len(), 2);
        // A duplicate learn of the same batch decision arrives.
        let mut fx = Vec::new();
        e.handle(
            EngineEvent::Message {
                from: NodeId(1),
                msg: 0,
            },
            0,
            &mut fx,
        );
        assert!(
            fx.iter()
                .any(|f| matches!(f, EngineEffect::Committed { .. })),
            "the duplicate learn still surfaces for oracles"
        );
        assert!(reply_ids(&fx).is_empty(), "no duplicate client replies");
        assert_eq!(e.replies().len(), 2);
    }

    #[test]
    fn batched_equals_unbatched_state_and_replies() {
        // The same request stream through a batched and an unbatched
        // engine must land in identical state with identical reply sets.
        let ops = [
            (9u16, 1u64, Op::Put { key: 1, value: 10 }),
            (10, 1, Op::Put { key: 2, value: 20 }),
            (9, 2, Op::Get { key: 2 }),
            (11, 1, Op::Put { key: 1, value: 30 }),
            (10, 2, Op::Get { key: 1 }),
        ];
        let mut plain = ReplicaEngine::new(Deciding::new(), KvStore::new());
        let mut batch = batched(BatchConfig::new(2, 1_000));
        for (c, r, op) in ops.iter().cloned() {
            request(&mut plain, c, r, op.clone(), 0);
            request(&mut batch, c, r, op, 0);
        }
        let mut fx = Vec::new();
        batch.fire_due(1_000, &mut fx); // flush the odd tail
        assert_eq!(plain.state().digest(), batch.state().digest());
        let ids = |e: &D| -> Vec<(NodeId, u64)> {
            e.replies().iter().map(|r| (r.client, r.req_id)).collect()
        };
        assert_eq!(ids(&plain), ids(&batch));
        // Batching needed fewer agreements for the same work.
        assert_eq!(plain.node().requests.len(), 5);
        assert_eq!(batch.node().requests.len(), 3);
    }

    #[test]
    fn blocked_engine_holds_the_batch_until_unblocked() {
        let mut e = batched(BatchConfig::new(100, 500));
        request(&mut e, 9, 1, Op::Noop, 0);
        e.set_blocked(true);
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(10_000, &mut fx), 0, "slow core gets no cycles");
        assert_eq!(e.pending_batch(), 1);
        e.set_blocked(false);
        assert_eq!(e.fire_due(10_000, &mut fx), 1);
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1)]);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_timer() {
        let mut e = engine();
        assert_eq!(e.next_deadline(), None);
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 300,
                },
                Action::SetTimer {
                    timer: Timer::Custom(0),
                    after: 100,
                },
            ],
            0,
        );
        assert_eq!(e.next_deadline(), Some(100));
        let mut fx = Vec::new();
        e.fire_due(100, &mut fx);
        assert_eq!(e.next_deadline(), Some(300));
    }
}
