//! The shared replica-engine layer: everything a deployment needs around a
//! sans-IO [`Protocol`] node, in exactly one place.
//!
//! Before this module existed, each harness — [`TestNet`](crate::testnet),
//! the `manycore-sim` cluster and the `onepaxos-runtime` node loop —
//! hand-rolled its own copy of [`Action`] dispatch, timer bookkeeping,
//! commit tracking and reply recording. The paper's portability claim
//! (protocol state machines "can be easily ported to a network system with
//! no change", §6.2) holds for the *protocols*; the engine extends it to
//! the *plumbing*, so a harness is only a transport.
//!
//! # The Event/Effect contract
//!
//! A [`ReplicaEngine`] owns one protocol node plus its timer table, its
//! commit log, the replicated-state-machine [`Applier`] and the per-client
//! reply records. The harness feeds it [`EngineEvent`]s:
//!
//! * [`EngineEvent::Start`] — bootstrap; run once before anything else.
//! * [`EngineEvent::Message`] — a peer message was delivered.
//! * [`EngineEvent::ClientRequest`] — a client submitted a command.
//! * [`EngineEvent::TimerDue`] — a *specific* timer's deadline passed.
//! * [`EngineEvent::Tick`] — fire every timer whose deadline passed.
//!
//! and receives [`EngineEffect`]s back:
//!
//! * [`EngineEffect::SendTo`] — transport this message to that node.
//! * [`EngineEffect::ReplyTo`] — notify this client of its commit (with
//!   the state-machine output when it is already applied).
//! * [`EngineEffect::Committed`] — a slot was decided locally (already
//!   recorded and applied by the engine; emitted for oracles and metrics).
//!
//! Everything stateful in between — arm/cancel/fire ordering of timers,
//! in-order application with at-most-once execution, commit-log
//! consistency checking, deferred replies waiting for a log gap to fill,
//! and the §7.5 local-read fast path — happens inside the engine, behind
//! the single `Action` dispatch in the workspace.
//!
//! # Timers
//!
//! The engine keeps absolute deadlines per [`Timer`]. Re-arming a timer
//! replaces its deadline; cancelling removes it; [`Self::next_deadline`]
//! lets schedulers (the simulator) plan wake-ups. A timer fires at most
//! once per arm: firing disarms it before the handler runs, so a handler
//! re-arming the same timer starts a fresh deadline.
//!
//! # Replies
//!
//! [`ReplyMode::Immediate`] emits [`EngineEffect::ReplyTo`] the moment the
//! protocol requests it (the output is attached when already applied) —
//! the semantics tests and the simulator want. [`ReplyMode::AfterApply`]
//! holds the reply until the command's state-machine output exists, so a
//! real client never observes a commit acknowledgement without its read
//! value — the threaded runtime's contract.
//!
//! # Batching
//!
//! Per-message tx/rx CPU cost — not propagation — is the throughput
//! bottleneck inside a machine (§3). [`BatchConfig`] turns on the
//! engine-side cure: client requests accumulate in the engine and travel
//! through **one** agreement as an [`Op::Batch`] command. A batch opens on
//! the first enqueued request, flushes when it reaches the flush depth
//! or when [`BatchConfig::max_delay`] has passed (via the ordinary timer
//! table, under the reserved [`BATCH_FLUSH`] timer — so
//! [`Self::next_deadline`] automatically covers a partially filled batch
//! and sleep-until-deadline harnesses cannot stall it). A flushed
//! singleton is submitted as a plain command, so `max_delay` is the only
//! cost batching can add to an idle system.
//!
//! The flush depth itself comes in two flavours. [`BatchConfig::Fixed`]
//! is a static knob — always flush at `max_commands`. But the optimal
//! depth tracks offered load (the `exp_batching` sweep: 16 is best at 24
//! closed-loop clients while 32 already loses throughput and adds
//! latency), so a static knob is wrong at every load but one.
//! [`BatchConfig::Adaptive`] instead lets the engine **learn** the depth:
//! a flush-time controller ([`AdaptiveBatch`]) walks the depth up while
//! demand keeps batches full, snaps it back to the observed fill when
//! load drops, refuses to grow while the commit backlog is past its
//! knee, and decays to depth 1 when idle — so a latency-sensitive
//! trickle never waits out `max_delay`. The controller samples only at
//! batch-open and flush time from counters the engine already maintains
//! ([`EngineStats`]): zero allocation, no timers of its own, depth always
//! within `[1, max_commands]`.
//!
//! Batches are advocated under the engine's [`NodeId::batch_source`]
//! identity. When a batch this engine advocated commits, the engine fans
//! it back out into per-client [`EngineEffect::ReplyTo`]s (in payload
//! order, honouring the [`ReplyMode`]); the protocol-level reply for the
//! batch identity itself is swallowed. Duplicate requests coalesced into
//! the same batch are submitted once, and the [`Applier`] deduplicates
//! across batches.
//!
//! # Fault injection
//!
//! [`Self::set_blocked`] is the uniform slow-core hook: a blocked engine
//! refuses to fire timers and tells the harness (via [`Self::is_blocked`])
//! to keep inbound messages queued.
//!
//! # Example
//!
//! ```
//! use onepaxos::engine::{EngineEffect, EngineEvent, ReplicaEngine};
//! use onepaxos::kv::KvStore;
//! use onepaxos::twopc::TwoPcNode;
//! use onepaxos::{ClusterConfig, NodeId, Op};
//!
//! // A single-node 2PC group decides immediately: drive one request
//! // through the engine and observe the effect stream.
//! let cfg = ClusterConfig::new(vec![NodeId(0)], NodeId(0));
//! let mut engine = ReplicaEngine::new(TwoPcNode::new(cfg), KvStore::new());
//! let mut effects = Vec::new();
//! engine.handle(EngineEvent::Start, 0, &mut effects);
//! engine.handle(
//!     EngineEvent::ClientRequest { client: NodeId(9), req_id: 1, op: Op::Put { key: 1, value: 7 } },
//!     0,
//!     &mut effects,
//! );
//! assert!(effects.iter().any(|e| matches!(e, EngineEffect::Committed { .. })));
//! assert_eq!(engine.state().get(1), Some(7));
//! ```

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::outbox::{Action, Outbox, Timer};
use crate::protocol::Protocol;
use crate::rsm::{Applier, StateMachine};
use crate::types::{Command, Instance, Nanos, NodeId, Op};

/// The engine-internal timer driving batch flushes. Reserved: protocols
/// must not arm it (they own [`Timer::Tick`] and the low `Custom` ids);
/// the engine intercepts it before protocol dispatch.
pub const BATCH_FLUSH: Timer = Timer::Custom(u8::MAX);

/// Command-batching policy (off by default; see the
/// [module docs](self#batching)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchConfig {
    /// Always flush at `max_commands` — the static knob, right at exactly
    /// one offered load.
    Fixed {
        /// Flush as soon as this many commands are waiting.
        max_commands: usize,
        /// Flush when the oldest waiting command is this old, even if the
        /// batch is not full — bounds the latency batching can add.
        max_delay: Nanos,
    },
    /// Track offered load and drive the flush depth with a hill-climb
    /// controller bounded by `[1, max_commands]`.
    Adaptive(AdaptiveBatch),
}

impl BatchConfig {
    /// Creates a [fixed](Self::Fixed) config flushing at `max_commands`
    /// or after `max_delay`.
    ///
    /// # Panics
    ///
    /// Panics if `max_commands` is zero.
    pub fn new(max_commands: usize, max_delay: Nanos) -> Self {
        assert!(max_commands >= 1, "a batch holds at least one command");
        BatchConfig::Fixed {
            max_commands,
            max_delay,
        }
    }

    /// Creates an [adaptive](Self::Adaptive) config (convenience mirror
    /// of `BatchConfig::Adaptive(cfg)`).
    pub fn adaptive(cfg: AdaptiveBatch) -> Self {
        BatchConfig::Adaptive(cfg)
    }

    /// The flush deadline shared by both policies.
    pub fn max_delay(&self) -> Nanos {
        match *self {
            BatchConfig::Fixed { max_delay, .. } => max_delay,
            BatchConfig::Adaptive(a) => a.max_delay,
        }
    }

    /// The depth ceiling: the fixed flush depth, or the adaptive
    /// controller's upper bound.
    pub fn max_commands(&self) -> usize {
        match *self {
            BatchConfig::Fixed { max_commands, .. } => max_commands,
            BatchConfig::Adaptive(a) => a.max_commands,
        }
    }

    /// Whether this config drives the depth adaptively.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, BatchConfig::Adaptive(_))
    }
}

impl Default for BatchConfig {
    /// Fixed 8 commands or 20 µs, whichever comes first — a batch deep
    /// enough to amortise the §3 per-message cost, a delay well under
    /// typical client patience.
    fn default() -> Self {
        BatchConfig::new(8, 20_000)
    }
}

/// Knobs of the adaptive batch-depth controller
/// ([`BatchConfig::Adaptive`]).
///
/// The controller owns one number — the current flush depth, always in
/// `[1, max_commands]` — and adjusts it from two zero-cost signals
/// sampled where the engine already does work:
///
/// * **Grow** (additive, +1): a flush was size-triggered *and* the next
///   request arrived within `max_delay` of it — demand exceeded the
///   depth inside one flush window. `grow_after` consecutive such
///   signals raise the depth, unless the commit backlog (batches
///   advocated but not yet committed) has reached `backlog_knee`.
/// * **Shrink** (snap to demand): consecutive deadline flushes at half
///   the depth or less drop the depth to the largest fill observed since
///   the last shrink — so a transient remainder flush behind a full one
///   never shrinks, while a real load drop converges in a couple of
///   windows. A commit backlog at twice the knee halves the depth
///   outright.
/// * **Goodput veto** (the hill-climb half): arrival rate and mean fill
///   are measured per window of 32 flush deadlines. A window that ran
///   deeper than its predecessor yet shipped ≥5% less is proof the
///   climb's marginal throughput was negative — the depth reverts to
///   the measured-better one; a window dominated by deadline flushes
///   that coalesced fewer than two commands on average paid deadline
///   waits for no message savings at all, and drops straight to
///   depth 1. Either way growth freezes for 48 goodput windows
///   (≈31 ms at the default deadline). This is what stops a fast closed loop
///   (whose replies echo requests back within one flush window at *any*
///   depth) from talking the controller into batching a load too light
///   to profit from it.
/// * **Idle decay**: a request arriving after `idle_after` of silence
///   resets the depth to 1, so a trickle flushes every command
///   immediately instead of waiting out `max_delay`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveBatch {
    /// Upper bound on the flush depth (the controller starts at 1).
    pub max_commands: usize,
    /// Flush deadline, as in the fixed policy.
    pub max_delay: Nanos,
    /// Consecutive demand signals required before growing by one.
    pub grow_after: u32,
    /// Commit-backlog knee: at `backlog_knee` in-flight batches the
    /// depth stops growing, at twice that it halves.
    pub backlog_knee: usize,
    /// Idle gap after which the depth decays back to 1.
    pub idle_after: Nanos,
}

impl AdaptiveBatch {
    /// Creates a controller config bounded by `max_commands` with flush
    /// deadline `max_delay`, using the default pacing knobs (grow on
    /// every demand signal, backlog knee 4, idle decay after 16 flush
    /// windows).
    ///
    /// # Panics
    ///
    /// Panics if `max_commands` is zero.
    pub fn new(max_commands: usize, max_delay: Nanos) -> Self {
        assert!(max_commands >= 1, "a batch holds at least one command");
        AdaptiveBatch {
            max_commands,
            max_delay,
            grow_after: 1,
            backlog_knee: 4,
            idle_after: 16 * max_delay.max(1),
        }
    }
}

impl Default for AdaptiveBatch {
    /// Depth in `[1, 32]` with the default 20 µs deadline: the span the
    /// static sweep found load-dependent (16 best at 24 clients, 32
    /// already overshooting).
    fn default() -> Self {
        AdaptiveBatch::new(32, 20_000)
    }
}

/// The deployment knobs shared by every harness — the one config struct
/// `TestNet::builder`, `SimBuilder` and the runtime `ClusterBuilder` all
/// accept, so a deployment shape written for one harness moves to
/// another unchanged.
///
/// # Examples
///
/// ```
/// use onepaxos::{BatchConfig, EngineConfig};
///
/// let cfg = EngineConfig::new()
///     .shards(4)
///     .batching(BatchConfig::new(8, 20_000));
/// assert_eq!(cfg.shards, 4);
/// assert!(cfg.batching.is_some());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Independent consensus groups per node, with key-hash routing
    /// between them (see [`crate::shard`]). Must be at least 1.
    pub shards: u16,
    /// Engine-level command batching, `None` for off (see
    /// [`BatchConfig`]).
    pub batching: Option<BatchConfig>,
}

impl EngineConfig {
    /// The default deployment: one consensus group, batching off.
    pub fn new() -> Self {
        EngineConfig {
            shards: 1,
            batching: None,
        }
    }

    /// Sets the number of shard groups.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero — every deployment has at least one group.
    pub fn shards(mut self, s: u16) -> Self {
        assert!(s >= 1, "a deployment needs at least one shard group");
        self.shards = s;
        self
    }

    /// Enables engine-level command batching with `cfg`.
    pub fn batching(mut self, cfg: BatchConfig) -> Self {
        self.batching = Some(cfg);
        self
    }

    /// Enables **adaptive** batching (shorthand for
    /// `batching(BatchConfig::Adaptive(cfg))`).
    pub fn adaptive_batching(mut self, cfg: AdaptiveBatch) -> Self {
        self.batching = Some(BatchConfig::Adaptive(cfg));
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new()
    }
}

/// What ended a batch's accumulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlushTrigger {
    /// The batch reached the flush depth.
    Size,
    /// The [`BATCH_FLUSH`] deadline fired first.
    Deadline,
}

/// Lightweight batching counters, maintained inline by the engine (plain
/// integer bumps, zero allocation) and sampled by the adaptive
/// controller at flush time. Snapshot via [`ReplicaEngine::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into a batch accumulator (retries coalesced
    /// into a waiting batch are not counted).
    pub enqueued: u64,
    /// Batches handed to the protocol (singletons included).
    pub flushes: u64,
    /// Commands carried by those flushes.
    pub flushed_commands: u64,
    /// Flushes triggered by reaching the flush depth.
    pub size_flushes: u64,
    /// Flushes triggered by the [`BATCH_FLUSH`] deadline.
    pub deadline_flushes: u64,
    /// Current flush depth: the controller's depth under
    /// [`BatchConfig::Adaptive`], `max_commands` under
    /// [`BatchConfig::Fixed`], 1 with batching off.
    pub depth: usize,
    /// Adaptive depth increases.
    pub grows: u64,
    /// Adaptive depth decreases (demand snaps and backlog halvings).
    pub shrinks: u64,
    /// Adaptive resets to depth 1 after an idle gap.
    pub idle_decays: u64,
    /// Transaction prepares applied by this node's state machine
    /// (every replica applies every prepare, so for a group of `n`
    /// replicas this is `n×` the prepares decided by the group).
    pub txn_prepares: u64,
    /// Prepares parked in the lock-wait queue instead of voting no
    /// (the ordered-lock fast path absorbing a conflict).
    pub txn_lock_waits: u64,
    /// Prepares turned away with a retryable busy vote (younger than
    /// the lock holder, or the wait queue was full).
    pub txn_busy_rejects: u64,
    /// Prepares that voted a hard no (transaction already aborted).
    pub txn_vote_aborts: u64,
    /// High-water mark of the lock-wait queue depth.
    pub txn_wait_depth: usize,
    /// Decided-but-unappliable commands buffered above an apply gap
    /// (see [`Applier::gap_backlog`]). A persistently non-zero backlog
    /// means this replica is missing a prefix — after an agreed
    /// truncation it can only catch up via snapshot install.
    pub gap_backlog: usize,
    /// Retained applied-log suffix length (since the last truncation).
    pub applied_log_len: usize,
    /// Cached at-most-once outputs (bounded at one per live client).
    pub outputs_len: usize,
    /// Finished-transaction outcomes retained by the state machine
    /// (bounded per coordinator by [`crate::kv::FINISHED_WINDOW`]).
    pub finished_len: usize,
}

impl EngineStats {
    /// Mean commands per flush (0 when nothing has flushed).
    pub fn mean_fill(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flushed_commands as f64 / self.flushes as f64
        }
    }

    /// Folds `other` into `self`: counters add, `depth` keeps the
    /// maximum (the aggregate of independent controllers has no single
    /// depth; the max is the one that matters for latency bounds).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.enqueued += other.enqueued;
        self.flushes += other.flushes;
        self.flushed_commands += other.flushed_commands;
        self.size_flushes += other.size_flushes;
        self.deadline_flushes += other.deadline_flushes;
        self.depth = self.depth.max(other.depth);
        self.grows += other.grows;
        self.shrinks += other.shrinks;
        self.idle_decays += other.idle_decays;
        self.txn_prepares += other.txn_prepares;
        self.txn_lock_waits += other.txn_lock_waits;
        self.txn_busy_rejects += other.txn_busy_rejects;
        self.txn_vote_aborts += other.txn_vote_aborts;
        self.txn_wait_depth = self.txn_wait_depth.max(other.txn_wait_depth);
        // Shards hold disjoint logs, gap buffers and outcome tables, so
        // the aggregate sizes are the sums.
        self.gap_backlog += other.gap_backlog;
        self.applied_log_len += other.applied_log_len;
        self.outputs_len += other.outputs_len;
        self.finished_len += other.finished_len;
    }
}

/// Consecutive low-fill deadline flushes required before the depth
/// snaps down to the observed demand. Two, not one: a remainder flush
/// trailing a size-triggered flush is noise, two windows of low fill is
/// a load drop.
const SHRINK_AFTER: u32 = 2;

/// Goodput-measurement window, in flush windows (`max_delay` units):
/// long enough to average out per-batch noise, short enough that a
/// climb that hurt throughput is caught within a few windows.
const RATE_WINDOW: u64 = 32;

/// How long growth stays frozen after a climb was reverted for making
/// goodput worse, in goodput windows (each [`RATE_WINDOW`] = 32 flush
/// deadlines, so 48 × 32 × 20 µs ≈ 31 ms at the default deadline).
/// The freeze bounds the probing duty cycle: at light load the
/// controller spends a few windows rediscovering that batching does
/// not pay and then holds the proven depth for this long, keeping the
/// probe tax in the single-digit percents while a genuine load
/// increase is still noticed within tens of milliseconds.
const FREEZE_WINDOWS: u64 = 48;

/// Runtime state of the adaptive depth controller; see [`AdaptiveBatch`]
/// for the policy.
#[derive(Debug)]
struct BatchController {
    cfg: AdaptiveBatch,
    /// Current flush depth, always in `[1, cfg.max_commands]`.
    depth: usize,
    /// Consecutive grow signals observed (see [`AdaptiveBatch`]).
    full_streak: u32,
    /// Consecutive low-fill deadline flushes observed.
    low_streak: u32,
    /// Largest fill since the last shrink evaluation — the demand level
    /// a shrink snaps to.
    peak_fill: usize,
    /// When the last size-triggered flush happened; consumed by the next
    /// batch-open to detect back-to-back demand.
    last_size_flush: Option<Nanos>,
    /// Last enqueue or flush, for idle detection.
    last_activity: Nanos,
    /// Start of the current goodput window.
    win_start: Nanos,
    /// `EngineStats::enqueued` at the window start, to measure the
    /// window's arrival rate as a delta.
    win_enqueued: u64,
    /// `EngineStats::flushes` at the window start.
    win_flushes: u64,
    /// `EngineStats::flushed_commands` at the window start.
    win_flushed: u64,
    /// `EngineStats::deadline_flushes` at the window start.
    win_deadline: u64,
    /// Last completed window's `(goodput, depth)` — the reference the
    /// hill-climb compares the current window against.
    anchor: Option<(f64, usize)>,
    /// Growth is suppressed until this time (set when a climb was
    /// reverted for shipping less goodput).
    frozen_until: Nanos,
}

impl BatchController {
    fn new(cfg: AdaptiveBatch) -> Self {
        BatchController {
            cfg,
            depth: 1,
            full_streak: 0,
            low_streak: 0,
            peak_fill: 0,
            last_size_flush: None,
            last_activity: 0,
            win_start: 0,
            win_enqueued: 0,
            win_flushes: 0,
            win_flushed: 0,
            win_deadline: 0,
            anchor: None,
            frozen_until: 0,
        }
    }

    /// Closes the goodput window if it has run its course: the
    /// hill-climb's veto. Demand signals only say "requests arrive
    /// back-to-back", which a fast closed loop produces at *any* depth —
    /// whether a deeper batch actually ships more commands per second
    /// only the measured arrival rate can tell. A window that is deeper
    /// than its predecessor and ≥5% slower means the marginal throughput
    /// of the climb was negative: revert to the anchor depth and freeze
    /// growth, so light-load deployments spend their time at the depth
    /// that measured best instead of riding the demand echo upward.
    fn roll_window(&mut self, now: Nanos, stats: &mut EngineStats) {
        let win = RATE_WINDOW * self.cfg.max_delay.max(1);
        let elapsed = now.saturating_sub(self.win_start);
        if elapsed < win {
            return;
        }
        let rate = (stats.enqueued - self.win_enqueued) as f64 / elapsed as f64;
        let flushes = stats.flushes - self.win_flushes;
        let deadline = stats.deadline_flushes - self.win_deadline;
        let clean = elapsed < 2 * win; // an idle-stretched window measures the gap, not the depth
        if clean && flushes >= 4 && deadline * 2 > flushes && self.depth > 1 {
            let mean_fill = (stats.flushed_commands - self.win_flushed) as f64 / flushes as f64;
            if mean_fill < 2.0 {
                // A window dominated by deadline flushes that coalesced
                // next to nothing: the load is too light for batching to
                // pay, and every command is waiting out a deadline for
                // no message savings. (A size-flushing engine never
                // trips this — its batches fill without waiting.) The
                // only depth that cannot wait is 1.
                self.depth = 1;
                self.frozen_until = now + FREEZE_WINDOWS * win;
                self.full_streak = 0;
                stats.shrinks += 1;
            }
        }
        if let Some((anchor_rate, anchor_depth)) = self.anchor {
            if clean && self.depth > anchor_depth && rate <= 0.95 * anchor_rate {
                self.depth = anchor_depth;
                self.frozen_until = now + FREEZE_WINDOWS * win;
                self.full_streak = 0;
                stats.shrinks += 1;
            }
        }
        self.anchor = Some((rate, self.depth));
        self.win_start = now;
        self.win_enqueued = stats.enqueued;
        self.win_flushes = stats.flushes;
        self.win_flushed = stats.flushed_commands;
        self.win_deadline = stats.deadline_flushes;
    }

    /// Samples the controller as a new batch opens: the hot-demand grow
    /// signal and the idle decay both live here.
    fn on_open(&mut self, now: Nanos, backlog: usize, stats: &mut EngineStats) {
        self.roll_window(now, stats);
        if let Some(flushed_at) = self.last_size_flush.take() {
            if now.saturating_sub(flushed_at) <= self.cfg.max_delay {
                // The previous batch filled and more demand arrived
                // within one flush window: the depth is too small.
                self.full_streak += 1;
                if self.full_streak >= self.cfg.grow_after
                    && backlog < self.cfg.backlog_knee
                    && now >= self.frozen_until
                    && self.depth < self.cfg.max_commands
                {
                    self.depth += 1;
                    self.full_streak = 0;
                    stats.grows += 1;
                }
            } else {
                self.full_streak = 0;
            }
        }
        if self.depth > 1 && now.saturating_sub(self.last_activity) >= self.cfg.idle_after {
            self.depth = 1;
            self.full_streak = 0;
            self.low_streak = 0;
            self.peak_fill = 0;
            // A fresh regime: stale goodput anchors must not veto it.
            self.anchor = None;
            self.win_start = now;
            self.win_enqueued = stats.enqueued;
            self.win_flushes = stats.flushes;
            self.win_flushed = stats.flushed_commands;
            self.win_deadline = stats.deadline_flushes;
            stats.idle_decays += 1;
        }
        self.last_activity = now;
    }

    /// Samples the controller as a batch flushes with `fill` commands.
    fn on_flush(
        &mut self,
        now: Nanos,
        fill: usize,
        trigger: FlushTrigger,
        backlog: usize,
        stats: &mut EngineStats,
    ) {
        self.roll_window(now, stats);
        self.last_activity = now;
        self.peak_fill = self.peak_fill.max(fill);
        match trigger {
            FlushTrigger::Size => {
                self.last_size_flush = Some(now);
                self.low_streak = 0;
            }
            FlushTrigger::Deadline => {
                if fill * 2 <= self.depth {
                    self.low_streak += 1;
                    if self.low_streak >= SHRINK_AFTER {
                        // Snap to the demand actually observed, not to a
                        // blind halving: any size flush since the last
                        // shrink keeps the peak at the full depth, so
                        // remainder noise cannot shrink a loaded engine.
                        let target = self.peak_fill.max(1);
                        if target < self.depth {
                            self.depth = target;
                            stats.shrinks += 1;
                        }
                        self.peak_fill = 0;
                        self.low_streak = 0;
                    }
                } else {
                    self.low_streak = 0;
                }
            }
        }
        if backlog >= 2 * self.cfg.backlog_knee && self.depth > 1 {
            // Commits are falling behind the advocacy rate: the knee of
            // the latency curve. Multiplicative decrease, immediately.
            self.depth = (self.depth / 2).max(1);
            stats.shrinks += 1;
        }
    }
}

/// One input to a [`ReplicaEngine`]: something the outside world did.
#[derive(Clone, Debug)]
pub enum EngineEvent<M> {
    /// Bootstrap the node (runs the protocol's `on_start`).
    Start,
    /// A message from peer `from` was delivered.
    Message {
        /// Sending node.
        from: NodeId,
        /// The protocol message.
        msg: M,
    },
    /// A client submitted operation `op` as `(client, req_id)`.
    ClientRequest {
        /// Originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// Operation to replicate.
        op: Op,
    },
    /// The deadline of `timer` passed; fire it if it is still armed.
    TimerDue {
        /// Which timer.
        timer: Timer,
    },
    /// Fire every armed timer whose deadline is at or before `now`.
    Tick,
}

/// One output of a [`ReplicaEngine`]: something the harness must transport.
///
/// `M` is the protocol's wire message type, `O` the state machine's output
/// type ([`StateMachine::Output`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineEffect<M, O> {
    /// Deliver `msg` to node `to` (self-sends included; harnesses deliver
    /// them without transmission cost, §2.3 footnote 5).
    SendTo {
        /// Destination node.
        to: NodeId,
        /// Protocol message.
        msg: M,
    },
    /// Acknowledge to `client` that `(client, req_id)` committed in
    /// `instance`. `value` carries the state-machine output when the
    /// command has already been applied locally (always, under
    /// [`ReplyMode::AfterApply`]).
    ReplyTo {
        /// Client to notify.
        client: NodeId,
        /// The client's request id.
        req_id: u64,
        /// Slot in which the command committed.
        instance: Instance,
        /// State-machine output, when already applied.
        value: Option<O>,
    },
    /// Slot `instance` was decided locally with `cmd`. The engine has
    /// already recorded and applied it; harnesses use this for global
    /// consistency oracles and commit metrics.
    Committed {
        /// Decided slot.
        instance: Instance,
        /// Decided command.
        cmd: Command,
    },
}

/// When [`EngineEffect::ReplyTo`] is emitted relative to application.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplyMode {
    /// Emit the reply the moment the protocol requests it; `value` is
    /// attached opportunistically. The deterministic harnesses use this.
    #[default]
    Immediate,
    /// Hold the reply until the command's output has been applied, so the
    /// acknowledgement always carries the value. The threaded runtime
    /// uses this (a log gap must not produce a value-less reply).
    AfterApply,
}

/// A recorded client reply (who was answered, for what, from where).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplyRecord {
    /// The client that was answered.
    pub client: NodeId,
    /// The request id that committed.
    pub req_id: u64,
    /// The slot it committed in.
    pub instance: Instance,
    /// The node that produced the reply.
    pub from: NodeId,
}

/// A state machine whose current value for a key can be read without
/// going through the replicated log — the engine-side half of the §7.5
/// relaxed-read fast path (the protocol-side half is
/// [`Protocol::can_read_locally`]).
pub trait LocalRead: StateMachine {
    /// Reads `key` from the local replica without recording an applied
    /// operation.
    fn read_local(&self, key: u64) -> Self::Output;

    /// Whether the state machine itself currently forbids a local read
    /// of `key` — the transactional analogue of the protocol-level 2PC
    /// lock window (§7.5): a key staged by a prepared cross-shard
    /// transaction ([`Op::TxnPrepare`]) must not be read until the
    /// outcome lands, or a reader could assemble a view in which one
    /// shard's fragment is visible and another's is not. Defaults to
    /// `false` (no state-level lock windows).
    fn blocks_local_read(&self, key: u64) -> bool {
        let _ = key;
        false
    }
}

impl LocalRead for crate::kv::KvStore {
    fn read_local(&self, key: u64) -> Self::Output {
        self.get(key)
    }

    /// Keys locked by a prepared transaction are unreadable until its
    /// outcome (see [`crate::txn`]).
    fn blocks_local_read(&self, key: u64) -> bool {
        self.txn_locked(key)
    }
}

/// One protocol node plus all of its deployment plumbing; see the
/// [module docs](self) for the Event/Effect contract.
#[derive(Debug)]
pub struct ReplicaEngine<P: Protocol, S: StateMachine> {
    node: P,
    applier: Applier<S>,
    /// Absolute deadline per armed timer.
    timers: BTreeMap<Timer, Nanos>,
    /// Local commit log (instance → decided command); only populated
    /// while `record_history` is on.
    commits: BTreeMap<Instance, Command>,
    /// Every reply emitted by this node, in emission order; only
    /// populated while `record_history` is on.
    replies: Vec<ReplyRecord>,
    /// Replies waiting for the state machine to catch up (AfterApply).
    deferred: Vec<(NodeId, u64, Instance)>,
    blocked: bool,
    reply_mode: ReplyMode,
    /// Whether to retain the commit log and reply records. Test harnesses
    /// assert on them; long-running deployments (the simulator, the
    /// threaded runtime) turn recording off so memory stays bounded.
    record_history: bool,
    /// Command-batching knobs; `None` = every request is its own
    /// agreement.
    batch: Option<BatchConfig>,
    /// The adaptive depth controller; `Some` iff `batch` is
    /// [`BatchConfig::Adaptive`].
    ctl: Option<BatchController>,
    /// Requests waiting for the current batch to flush.
    batch_buf: Vec<Command>,
    /// Identities of the requests in `batch_buf`, for O(1) retry dedup
    /// (cleared, not dropped, at flush — zero-alloc in steady state).
    batch_keys: HashSet<(NodeId, u64)>,
    /// Batching counters (see [`EngineStats`]); plain integer bumps on
    /// the hot path.
    stats: EngineStats,
    /// Sequence number of the next batch this engine advocates.
    batch_seq: u64,
    /// Batches advocated but not yet committed-and-fanned-out, so a
    /// re-decided batch cannot fan its replies out twice.
    inflight_batches: BTreeSet<u64>,
    /// The consensus group this engine belongs to in a sharded
    /// deployment, if any; diagnostics only (safety-violation panics name
    /// the shard so multi-group harness failures localize).
    shard: Option<crate::shard::ShardId>,
    /// Reusable action buffer handed to protocol handlers.
    outbox: Outbox<P::Msg>,
    /// Scratch vector [`Self::absorb`] swaps the outbox's actions into,
    /// so draining a handler's actions allocates nothing in steady state.
    action_scratch: Vec<Action<P::Msg>>,
}

impl<P: Protocol, S: StateMachine> ReplicaEngine<P, S> {
    /// Wraps `node` and a fresh `state` replica, replying
    /// [immediately](ReplyMode::Immediate).
    pub fn new(node: P, state: S) -> Self {
        Self::with_reply_mode(node, state, ReplyMode::Immediate)
    }

    /// Wraps `node` with an explicit [`ReplyMode`].
    pub fn with_reply_mode(node: P, state: S, reply_mode: ReplyMode) -> Self {
        ReplicaEngine {
            node,
            applier: Applier::new(state),
            timers: BTreeMap::new(),
            commits: BTreeMap::new(),
            replies: Vec::new(),
            deferred: Vec::new(),
            blocked: false,
            reply_mode,
            record_history: true,
            batch: None,
            ctl: None,
            batch_buf: Vec::new(),
            batch_keys: HashSet::new(),
            stats: EngineStats::default(),
            batch_seq: 0,
            inflight_batches: BTreeSet::new(),
            shard: None,
            outbox: Outbox::new(),
            action_scratch: Vec::new(),
        }
    }

    /// Labels this engine with the shard (consensus group) it serves in a
    /// sharded deployment (see [`crate::shard::ShardedEngine`]). Purely
    /// diagnostic: consistency panics name the shard.
    pub fn with_shard(mut self, shard: crate::shard::ShardId) -> Self {
        self.shard = Some(shard);
        self
    }

    /// The shard label, if this engine is part of a sharded deployment.
    pub fn shard(&self) -> Option<crate::shard::ShardId> {
        self.shard
    }

    /// Enables command batching with `cfg` (see the
    /// [module docs](self#batching)).
    pub fn with_batching(mut self, cfg: BatchConfig) -> Self {
        self.set_batching(Some(cfg));
        self
    }

    /// Enables (`Some`) or disables (`None`) command batching. Call only
    /// while no batch is accumulating (e.g. before the first request):
    /// disabling with requests buffered would strand them. Switching to
    /// an adaptive config starts its controller fresh at depth 1.
    ///
    /// # Panics
    ///
    /// Panics if requests are currently buffered.
    pub fn set_batching(&mut self, cfg: Option<BatchConfig>) {
        assert!(
            self.batch_buf.is_empty(),
            "cannot reconfigure batching with {} requests buffered",
            self.batch_buf.len()
        );
        self.batch = cfg;
        self.ctl = match cfg {
            Some(BatchConfig::Adaptive(a)) => Some(BatchController::new(a)),
            _ => None,
        };
    }

    /// The active batching config, if batching is on.
    pub fn batching(&self) -> Option<BatchConfig> {
        self.batch
    }

    /// Number of requests waiting in the open batch.
    pub fn pending_batch(&self) -> usize {
        self.batch_buf.len()
    }

    /// A snapshot of the batching counters, including the current flush
    /// depth and the applied state machine's transaction counters (see
    /// [`EngineStats`]).
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.depth = self.flush_depth();
        let t = self.applier.state().txn_stats();
        s.txn_prepares = t.prepares;
        s.txn_lock_waits = t.lock_waits;
        s.txn_busy_rejects = t.busy_rejects;
        s.txn_vote_aborts = t.vote_aborts;
        s.txn_wait_depth = t.wait_depth;
        s.finished_len = t.finished_len;
        s.gap_backlog = self.applier.gap_backlog();
        s.applied_log_len = self.applier.applied_log().len();
        s.outputs_len = self.applier.outputs_len();
        s
    }

    /// The number of buffered commands that triggers a size flush right
    /// now: the controller's learned depth under an adaptive config, the
    /// static `max_commands` otherwise (1 with batching off).
    fn flush_depth(&self) -> usize {
        match (&self.ctl, &self.batch) {
            (Some(ctl), _) => ctl.depth,
            (None, Some(cfg)) => cfg.max_commands(),
            (None, None) => 1,
        }
    }

    /// Raises the batch sequence number to at least `floor`.
    ///
    /// Batch identities are `(batch_source, seq)` and the protocols
    /// deduplicate decided identities forever — so a deployment that
    /// **rebuilds** an engine in place (the paper's silently rebooted
    /// node) must move the replacement into a fresh sequence epoch, or
    /// its recycled batch ids would be dropped as already-decided
    /// duplicates by surviving peers and the batched clients would never
    /// be answered. `TestNet::reset_node` shifts each incarnation by
    /// [`Self::BATCH_EPOCH`]; long-running deployments without in-place
    /// rebuilds never need this.
    pub fn set_batch_seq_floor(&mut self, floor: u64) {
        self.batch_seq = self.batch_seq.max(floor);
    }

    /// Sequence-number span reserved per engine incarnation (2^32
    /// batches) for [`Self::set_batch_seq_floor`].
    pub const BATCH_EPOCH: u64 = 1 << 32;

    /// Enables or disables commit-log and reply-record retention
    /// (default on). Turn it off for long-running deployments: duplicate
    /// decisions are still checked by the [`Applier`] either way, but the
    /// per-command history is not retained, so memory stays bounded by
    /// live state rather than by run length.
    pub fn with_history(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// Feeds one event to the node at time `now`, appending the resulting
    /// effects to `effects`.
    ///
    /// Blocked engines still process events handed to them — blocking
    /// gates *delivery* (the harness holds messages back, checked via
    /// [`Self::is_blocked`]) and *timer firing*, not explicit calls.
    pub fn handle(
        &mut self,
        event: EngineEvent<P::Msg>,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) {
        match event {
            EngineEvent::Start => {
                self.node.on_start(now, &mut self.outbox);
                self.absorb(now, effects);
            }
            EngineEvent::Message { from, msg } => {
                self.node.on_message(from, msg, now, &mut self.outbox);
                self.absorb(now, effects);
            }
            EngineEvent::ClientRequest { client, req_id, op } => {
                // Pre-built batches bypass the accumulator (never nest).
                if self.batch.is_some() && !matches!(op, Op::Batch(_)) {
                    self.enqueue_batched(client, req_id, op, now, effects);
                } else {
                    self.node
                        .on_client_request(client, req_id, op, now, &mut self.outbox);
                    self.absorb(now, effects);
                }
            }
            EngineEvent::TimerDue { timer } => {
                self.fire_one(timer, now, effects);
            }
            EngineEvent::Tick => {
                self.fire_due(now, effects);
            }
        }
    }

    /// Fires every armed timer whose deadline is at or before `now`, in
    /// [`Timer`] order; returns how many fired. A blocked engine fires
    /// nothing (the slow core is not getting cycles).
    ///
    /// The due set is computed before any handler runs, so a handler
    /// re-arming its own timer (the periodic-tick pattern) cannot make it
    /// fire twice in one call — but each timer's armed state is
    /// re-checked just before it fires, so a handler cancelling or
    /// re-arming a *sibling* due timer takes effect within the same pass
    /// (identical to delivering each deadline via
    /// [`EngineEvent::TimerDue`]).
    pub fn fire_due(
        &mut self,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) -> usize {
        if self.blocked {
            return 0;
        }
        let due: Vec<Timer> = self
            .timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&t, _)| t)
            .collect();
        let mut fired = 0;
        for &t in &due {
            match self.timers.get(&t) {
                Some(&at) if at <= now => {}
                _ => continue, // cancelled or pushed out by an earlier handler
            }
            self.timers.remove(&t);
            if t == BATCH_FLUSH {
                self.flush_batch(FlushTrigger::Deadline, now, effects);
            } else {
                self.node.on_timer(t, now, &mut self.outbox);
                self.absorb(now, effects);
            }
            fired += 1;
        }
        fired
    }

    fn fire_one(
        &mut self,
        timer: Timer,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) -> bool {
        if self.blocked {
            return false;
        }
        match self.timers.get(&timer) {
            Some(&at) if at <= now => {}
            _ => return false, // cancelled, re-armed later, or never armed
        }
        self.timers.remove(&timer);
        if timer == BATCH_FLUSH {
            self.flush_batch(FlushTrigger::Deadline, now, effects);
        } else {
            self.node.on_timer(timer, now, &mut self.outbox);
            self.absorb(now, effects);
        }
        true
    }

    // ----------------------------------------------------------------
    // Batching (see the module docs).
    // ----------------------------------------------------------------

    /// Adds one request to the open batch, opening it (and arming the
    /// flush deadline) if necessary, and flushing when the depth is
    /// reached.
    fn enqueue_batched(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) {
        let cfg = self.batch.expect("checked by the caller");
        // O(1) retry dedup: a linear scan of `batch_buf` here would make
        // accumulation O(n²) at exactly the depths the adaptive
        // controller reaches. The set mirrors `batch_buf`'s identities
        // and is cleared (capacity kept) at every flush.
        if !self.batch_keys.insert((client, req_id)) {
            return; // a retry of a request already waiting in this batch
        }
        if self.batch_buf.is_empty() {
            if let Some(ctl) = &mut self.ctl {
                ctl.on_open(now, self.inflight_batches.len(), &mut self.stats);
            }
            self.timers.insert(BATCH_FLUSH, now + cfg.max_delay());
        }
        self.stats.enqueued += 1;
        self.batch_buf.push(Command::new(client, req_id, op));
        if self.batch_buf.len() >= self.flush_depth() {
            self.flush_batch(FlushTrigger::Size, now, effects);
        }
    }

    /// Hands the accumulated batch to the protocol as one agreement (or
    /// as a plain command, if only one request is waiting) and disarms
    /// the flush deadline.
    fn flush_batch(
        &mut self,
        trigger: FlushTrigger,
        now: Nanos,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) {
        self.timers.remove(&BATCH_FLUSH);
        self.batch_keys.clear();
        if self.batch_buf.is_empty() {
            return;
        }
        self.stats.flushes += 1;
        self.stats.flushed_commands += self.batch_buf.len() as u64;
        match trigger {
            FlushTrigger::Size => self.stats.size_flushes += 1,
            FlushTrigger::Deadline => self.stats.deadline_flushes += 1,
        }
        if let Some(ctl) = &mut self.ctl {
            ctl.on_flush(
                now,
                self.batch_buf.len(),
                trigger,
                self.inflight_batches.len(),
                &mut self.stats,
            );
        }
        let cmds = std::mem::take(&mut self.batch_buf);
        if cmds.len() == 1 {
            // A singleton batch is indistinguishable from an unbatched
            // command: no synthetic identity, no fan-out bookkeeping.
            let c = cmds.into_iter().next().expect("len checked");
            self.node
                .on_client_request(c.client, c.req_id, c.op, now, &mut self.outbox);
        } else {
            self.batch_seq += 1;
            let batch = Command::batch(self.node.node_id(), self.batch_seq, cmds);
            self.inflight_batches.insert(self.batch_seq);
            self.node.on_client_request(
                batch.client,
                batch.req_id,
                batch.op,
                now,
                &mut self.outbox,
            );
        }
        self.absorb(now, effects);
    }

    /// The single `Action` dispatch of the workspace: drains the node's
    /// outbox into engine state and harness-facing effects.
    ///
    /// The drain swaps the outbox's backing vector with a persistent
    /// scratch vector instead of allocating a fresh one per handler
    /// invocation — both buffers keep their capacity, so the hottest
    /// loop in the workspace settles at zero allocations.
    fn absorb(&mut self, now: Nanos, effects: &mut Vec<EngineEffect<P::Msg, S::Output>>) {
        let mut actions = std::mem::take(&mut self.action_scratch);
        self.outbox.take_into(&mut actions);
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => effects.push(EngineEffect::SendTo { to, msg }),
                Action::Reply {
                    client,
                    req_id,
                    instance,
                } => self.reply(client, req_id, instance, effects),
                Action::Commit { instance, cmd } => {
                    if self.record_history {
                        let me = self.node.node_id();
                        let prior = self.commits.insert(instance, cmd.clone());
                        if let Some(prior) = prior {
                            let group = self
                                .shard
                                .map_or(String::new(), |s| format!(" (shard {s})"));
                            assert_eq!(
                                prior, cmd,
                                "{me}{group} re-learned instance {instance} with a different command"
                            );
                        }
                    }
                    // The applier independently rejects a re-decided
                    // instance with a different command, so safety
                    // checking does not depend on the history log.
                    let base_before = self.applier.log_base();
                    self.applier.on_decided(instance, cmd.clone());
                    let base_after = self.applier.log_base();
                    if base_after > base_before {
                        // An agreed Op::Truncate (possibly inside a
                        // batch) applied: drop protocol learner/acceptor
                        // state and the engine's own commit history below
                        // the new base.
                        self.node.truncate(base_after);
                        self.commits = self.commits.split_off(&base_after);
                    }
                    // A committed batch that *this* engine advocated fans
                    // back out into per-client replies, exactly once (a
                    // re-decided batch finds its inflight entry gone).
                    let fan_out: Vec<(NodeId, u64)> = match cmd.as_batch() {
                        Some(inner)
                            if cmd.client == self.node.node_id().batch_source()
                                && self.inflight_batches.remove(&cmd.req_id) =>
                        {
                            inner.iter().map(|c| (c.client, c.req_id)).collect()
                        }
                        _ => Vec::new(),
                    };
                    effects.push(EngineEffect::Committed { instance, cmd });
                    self.flush_deferred(effects);
                    for (client, req_id) in fan_out {
                        self.reply(client, req_id, instance, effects);
                    }
                }
                Action::SetTimer { timer, after } => {
                    self.timers.insert(timer, now + after);
                }
                Action::CancelTimer { timer } => {
                    self.timers.remove(&timer);
                }
            }
        }
        self.action_scratch = actions;
    }

    fn reply(
        &mut self,
        client: NodeId,
        req_id: u64,
        instance: Instance,
        effects: &mut Vec<EngineEffect<P::Msg, S::Output>>,
    ) {
        if client.is_batch_source() {
            // The protocol acknowledging a batch to its synthetic
            // advocate (possibly another engine's): per-client replies
            // are fanned out at commit time by the advocating engine, so
            // this must never reach a real wire or the records.
            return;
        }
        let value = self.applier.output_of(client, req_id).cloned();
        if value.is_none() && self.reply_mode == ReplyMode::AfterApply {
            self.deferred.push((client, req_id, instance));
            return;
        }
        if self.record_history {
            self.replies.push(ReplyRecord {
                client,
                req_id,
                instance,
                from: self.node.node_id(),
            });
        }
        effects.push(EngineEffect::ReplyTo {
            client,
            req_id,
            instance,
            value,
        });
    }

    /// Retries deferred replies after new commands were applied. Each is
    /// re-run through [`Self::reply`], which emits it when the output now
    /// exists and re-defers it otherwise.
    fn flush_deferred(&mut self, effects: &mut Vec<EngineEffect<P::Msg, S::Output>>) {
        if self.deferred.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.deferred);
        for (client, req_id, instance) in pending {
            self.reply(client, req_id, instance, effects);
        }
    }

    // ----------------------------------------------------------------
    // Timer table.
    // ----------------------------------------------------------------

    /// The earliest armed deadline, if any (for harness wake-up planning).
    ///
    /// Includes a pending batch-flush deadline: the accumulator arms the
    /// reserved [`BATCH_FLUSH`] timer in this same table, so a harness
    /// that sleeps until `next_deadline` can never stall a partially
    /// filled batch.
    pub fn next_deadline(&self) -> Option<Nanos> {
        self.timers.values().copied().min()
    }

    /// The absolute deadline `timer` is armed for, if armed.
    pub fn timer_deadline(&self, timer: Timer) -> Option<Nanos> {
        self.timers.get(&timer).copied()
    }

    // ----------------------------------------------------------------
    // Fault injection.
    // ----------------------------------------------------------------

    /// Marks this replica as a blocked/slow core (or unblocks it).
    /// Blocked engines fire no timers; harnesses must also hold back
    /// message delivery while [`Self::is_blocked`] returns `true`.
    pub fn set_blocked(&mut self, blocked: bool) {
        self.blocked = blocked;
    }

    /// Whether this replica is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    // ----------------------------------------------------------------
    // Snapshots & catch-up (see `Applier::snapshot`).
    // ----------------------------------------------------------------

    /// Captures this replica's applied prefix as an installable snapshot
    /// (state machine + session table at the current apply watermark).
    pub fn snapshot(&self) -> crate::rsm::ApplierSnapshot<S> {
        self.applier.snapshot()
    }

    /// Installs a peer's snapshot, fast-forwarding the applier *and* the
    /// protocol past its watermark. Returns `false` (and changes
    /// nothing) if the snapshot is at or below what this replica already
    /// applied.
    pub fn install_snapshot(&mut self, snap: crate::rsm::ApplierSnapshot<S>) -> bool {
        let watermark = snap.watermark;
        if !self.applier.install_snapshot(snap) {
            return false;
        }
        self.node.truncate(watermark);
        self.commits = self.commits.split_off(&watermark);
        // Drop replies parked for instances the snapshot covers: their
        // clients re-send, and the retry is answered from the installed
        // session table (at-most-once) instead of re-applying.
        self.deferred.retain(|&(_, _, inst)| inst >= watermark);
        true
    }

    // ----------------------------------------------------------------
    // Local reads (§7.5).
    // ----------------------------------------------------------------

    /// Whether the wrapped protocol ever serves reads locally.
    pub fn supports_local_reads(&self) -> bool {
        self.node.supports_local_reads()
    }

    /// Whether `key` is readable from the local replica *right now*:
    /// the protocol must allow it (e.g. 2PC outside its lock window)
    /// **and** the state machine must not hold a transactional lock on
    /// the key ([`LocalRead::blocks_local_read`] — a prepared
    /// cross-shard fragment keeps its keys unreadable until the
    /// outcome).
    pub fn can_read_locally(&self, key: u64) -> bool
    where
        S: LocalRead,
    {
        self.node.can_read_locally(key) && !self.applier.state().blocks_local_read(key)
    }

    /// Serves a relaxed read of `key` from the local replica, without any
    /// agreement traffic, if both lock gates currently allow it.
    pub fn local_read(&self, key: u64) -> Option<S::Output>
    where
        S: LocalRead,
    {
        self.can_read_locally(key)
            .then(|| self.applier.state().read_local(key))
    }

    // ----------------------------------------------------------------
    // Accessors.
    // ----------------------------------------------------------------

    /// The wrapped protocol node.
    pub fn node(&self) -> &P {
        &self.node
    }

    /// Mutable access to the node (white-box assertions in tests).
    pub fn node_mut(&mut self) -> &mut P {
        &mut self.node
    }

    /// The replicated-state-machine applier.
    pub fn applier(&self) -> &Applier<S> {
        &self.applier
    }

    /// The applied state machine.
    pub fn state(&self) -> &S {
        self.applier.state()
    }

    /// The local commit log (instance → decided command). Empty when
    /// history recording is off ([`Self::with_history`]).
    pub fn commits(&self) -> &BTreeMap<Instance, Command> {
        &self.commits
    }

    /// Every reply this node has emitted, in emission order. Empty when
    /// history recording is off ([`Self::with_history`]).
    pub fn replies(&self) -> &[ReplyRecord] {
        &self.replies
    }

    /// Replies currently waiting for the state machine to catch up
    /// (only non-empty under [`ReplyMode::AfterApply`]).
    pub fn deferred_replies(&self) -> usize {
        self.deferred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvStore;

    /// A scripted protocol: handlers replay queued actions, so tests can
    /// exercise engine semantics without a real consensus protocol.
    struct Scripted {
        me: NodeId,
        /// Actions to emit on the next handler invocation.
        script: Vec<Action<u8>>,
        timer_fires: Vec<(Timer, Nanos)>,
        readable: bool,
    }

    impl Scripted {
        fn new() -> Self {
            Scripted {
                me: NodeId(0),
                script: Vec::new(),
                timer_fires: Vec::new(),
                readable: false,
            }
        }
    }

    impl Protocol for Scripted {
        type Msg = u8;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, out: &mut Outbox<u8>) {
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn on_message(&mut self, _from: NodeId, _msg: u8, _now: Nanos, out: &mut Outbox<u8>) {
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn on_timer(&mut self, timer: Timer, now: Nanos, out: &mut Outbox<u8>) {
            self.timer_fires.push((timer, now));
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn on_client_request(
            &mut self,
            _client: NodeId,
            _req_id: u64,
            _op: Op,
            _now: Nanos,
            out: &mut Outbox<u8>,
        ) {
            for a in self.script.drain(..) {
                out.push(a);
            }
        }

        fn is_leader(&self) -> bool {
            true
        }

        fn leader_hint(&self) -> Option<NodeId> {
            Some(self.me)
        }

        fn supports_local_reads(&self) -> bool {
            true
        }

        fn can_read_locally(&self, _key: u64) -> bool {
            self.readable
        }
    }

    type E = ReplicaEngine<Scripted, KvStore>;
    type Fx = Vec<EngineEffect<u8, Option<u64>>>;

    fn engine() -> E {
        ReplicaEngine::new(Scripted::new(), KvStore::new())
    }

    fn drive(e: &mut E, actions: Vec<Action<u8>>, now: Nanos) -> Fx {
        e.node_mut().script = actions;
        let mut fx = Vec::new();
        e.handle(
            EngineEvent::Message {
                from: NodeId(1),
                msg: 0,
            },
            now,
            &mut fx,
        );
        fx
    }

    #[test]
    fn rearm_replaces_the_deadline() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 100,
            }],
            0,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), Some(100));
        // Re-arm at a later deadline: the old one must not fire.
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 500,
            }],
            50,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), Some(550));
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(100, &mut fx), 0, "superseded deadline fired");
        assert_eq!(e.fire_due(550, &mut fx), 1);
        assert_eq!(e.node().timer_fires, vec![(Timer::Tick, 550)]);
    }

    #[test]
    fn cancel_after_set_wins_and_set_after_cancel_wins() {
        let mut e = engine();
        // Same handler: arm then cancel → not armed.
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 10,
                },
                Action::CancelTimer { timer: Timer::Tick },
            ],
            0,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), None);
        // Same handler: cancel then arm → armed.
        drive(
            &mut e,
            vec![
                Action::CancelTimer { timer: Timer::Tick },
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 10,
                },
            ],
            0,
        );
        assert_eq!(e.timer_deadline(Timer::Tick), Some(10));
    }

    #[test]
    fn fired_timer_is_disarmed_and_rearm_in_handler_is_fresh() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 100,
            }],
            0,
        );
        // The handler re-arms the same timer; it must not re-fire in the
        // same fire_due pass.
        e.node_mut().script = vec![Action::SetTimer {
            timer: Timer::Tick,
            after: 100,
        }];
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(1_000, &mut fx), 1);
        assert_eq!(e.timer_deadline(Timer::Tick), Some(1_100));
        // One-shot semantics: without a re-arm nothing is left.
        assert_eq!(e.fire_due(1_100, &mut fx), 1);
        assert_eq!(e.fire_due(10_000, &mut fx), 0);
    }

    #[test]
    fn timers_fire_in_timer_order() {
        let mut e = engine();
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Custom(2),
                    after: 5,
                },
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 10,
                },
                Action::SetTimer {
                    timer: Timer::Custom(1),
                    after: 7,
                },
            ],
            0,
        );
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(100, &mut fx), 3);
        let order: Vec<Timer> = e.node().timer_fires.iter().map(|&(t, _)| t).collect();
        assert_eq!(order, vec![Timer::Tick, Timer::Custom(1), Timer::Custom(2)]);
    }

    #[test]
    fn handler_cancelling_a_sibling_due_timer_takes_effect_in_the_same_pass() {
        let mut e = engine();
        // Tick and Custom(0) both due at 100; Tick fires first (Timer
        // order) and its handler cancels Custom(0) and re-arms Custom(1)
        // far in the future.
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 100,
                },
                Action::SetTimer {
                    timer: Timer::Custom(0),
                    after: 100,
                },
                Action::SetTimer {
                    timer: Timer::Custom(1),
                    after: 100,
                },
            ],
            0,
        );
        e.node_mut().script = vec![
            Action::CancelTimer {
                timer: Timer::Custom(0),
            },
            Action::SetTimer {
                timer: Timer::Custom(1),
                after: 10_000,
            },
        ];
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(100, &mut fx), 1, "only Tick may fire");
        assert_eq!(e.node().timer_fires, vec![(Timer::Tick, 100)]);
        assert_eq!(e.timer_deadline(Timer::Custom(0)), None);
        assert_eq!(e.timer_deadline(Timer::Custom(1)), Some(10_100));
    }

    #[test]
    fn timer_due_ignores_stale_and_unarmed_deadlines() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 100,
            }],
            0,
        );
        let mut fx = Vec::new();
        // Not yet due.
        e.handle(EngineEvent::TimerDue { timer: Timer::Tick }, 99, &mut fx);
        assert!(e.node().timer_fires.is_empty());
        // Due.
        e.handle(EngineEvent::TimerDue { timer: Timer::Tick }, 100, &mut fx);
        assert_eq!(e.node().timer_fires.len(), 1);
        // Already fired: a second due notification is stale.
        e.handle(EngineEvent::TimerDue { timer: Timer::Tick }, 200, &mut fx);
        assert_eq!(e.node().timer_fires.len(), 1);
    }

    #[test]
    fn blocked_engine_fires_no_timers() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::SetTimer {
                timer: Timer::Tick,
                after: 10,
            }],
            0,
        );
        e.set_blocked(true);
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(1_000, &mut fx), 0);
        e.set_blocked(false);
        assert_eq!(e.fire_due(1_000, &mut fx), 1);
    }

    fn put(client: u16, req: u64, key: u64, value: u64) -> Command {
        Command::new(NodeId(client), req, Op::Put { key, value })
    }

    #[test]
    fn duplicate_client_request_applies_once() {
        let mut e = engine();
        // The same (client, req) decided in two instances: the client
        // retried and two advocates won slots. Applied exactly once.
        drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 5, 50),
                },
                Action::Commit {
                    instance: 1,
                    cmd: put(9, 1, 5, 50),
                },
                Action::Commit {
                    instance: 2,
                    cmd: put(9, 2, 5, 60),
                },
            ],
            0,
        );
        assert_eq!(e.state().writes(), 2, "duplicate must not re-apply");
        assert_eq!(e.state().get(5), Some(60));
        assert_eq!(e.commits().len(), 3);
    }

    #[test]
    fn relearn_same_command_is_idempotent() {
        let mut e = engine();
        let fx = drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 1, 10),
                },
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 1, 10),
                },
            ],
            0,
        );
        // Both learns surface for oracles/metrics, but state applied once.
        let commits = fx
            .iter()
            .filter(|e| matches!(e, EngineEffect::Committed { .. }))
            .count();
        assert_eq!(commits, 2);
        assert_eq!(e.state().writes(), 1);
    }

    #[test]
    #[should_panic(expected = "re-learned instance 0 with a different command")]
    fn relearn_different_command_panics() {
        let mut e = engine();
        drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 1, 10),
                },
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 2, 1, 20),
                },
            ],
            0,
        );
    }

    #[test]
    fn reply_records_are_idempotent_per_request() {
        let mut e = engine();
        drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 3, 30),
                },
                Action::Reply {
                    client: NodeId(9),
                    req_id: 1,
                    instance: 0,
                },
            ],
            0,
        );
        // A duplicate request is re-answered (e.g. Mencius answering from
        // its decided-id table): same instance, same value, twice in the
        // record — identical content, no double application.
        let fx = drive(
            &mut e,
            vec![Action::Reply {
                client: NodeId(9),
                req_id: 1,
                instance: 0,
            }],
            0,
        );
        assert_eq!(e.replies().len(), 2);
        assert_eq!(e.replies()[0], e.replies()[1]);
        match &fx[0] {
            EngineEffect::ReplyTo {
                instance, value, ..
            } => {
                assert_eq!(*instance, 0);
                assert_eq!(*value, Some(None)); // Put output: no prior value
            }
            other => panic!("expected ReplyTo, got {other:?}"),
        }
        assert_eq!(e.state().writes(), 1);
    }

    #[test]
    fn after_apply_defers_replies_across_log_gaps() {
        let mut e =
            ReplicaEngine::with_reply_mode(Scripted::new(), KvStore::new(), ReplyMode::AfterApply);
        // Instance 1 decided and replied-to before instance 0 exists: the
        // reply must wait for the gap to fill.
        let fx = drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 1,
                    cmd: put(9, 2, 7, 70),
                },
                Action::Reply {
                    client: NodeId(9),
                    req_id: 2,
                    instance: 1,
                },
            ],
            0,
        );
        assert!(
            !fx.iter().any(|e| matches!(e, EngineEffect::ReplyTo { .. })),
            "reply leaked across a log gap"
        );
        assert_eq!(e.deferred_replies(), 1);
        // Filling the gap applies both commands and releases the reply,
        // with the output attached.
        let fx = drive(
            &mut e,
            vec![Action::Commit {
                instance: 0,
                cmd: put(9, 1, 7, 60),
            }],
            0,
        );
        let reply = fx
            .iter()
            .find_map(|e| match e {
                EngineEffect::ReplyTo { req_id, value, .. } => Some((*req_id, *value)),
                _ => None,
            })
            .expect("deferred reply released");
        assert_eq!(reply, (2, Some(Some(60)))); // Put returns prior value
        assert_eq!(e.deferred_replies(), 0);
    }

    #[test]
    fn immediate_mode_replies_without_the_value() {
        let mut e = engine();
        let fx = drive(
            &mut e,
            vec![Action::Reply {
                client: NodeId(9),
                req_id: 1,
                instance: 4,
            }],
            0,
        );
        match &fx[0] {
            EngineEffect::ReplyTo { value, .. } => assert_eq!(*value, None),
            other => panic!("expected ReplyTo, got {other:?}"),
        }
    }

    #[test]
    fn local_read_is_gated_by_the_protocol() {
        let mut e = engine();
        drive(
            &mut e,
            vec![Action::Commit {
                instance: 0,
                cmd: put(9, 1, 2, 22),
            }],
            0,
        );
        e.node_mut().readable = false;
        assert_eq!(e.local_read(2), None, "lock window must block the read");
        e.node_mut().readable = true;
        assert_eq!(e.local_read(2), Some(Some(22)));
        assert_eq!(e.local_read(99), Some(None));
        // Reads through the fast path are not applied operations.
        assert_eq!(e.state().reads(), 0);
    }

    #[test]
    fn history_off_keeps_no_records_but_still_applies_and_replies() {
        let mut e = ReplicaEngine::new(Scripted::new(), KvStore::new()).with_history(false);
        let fx = drive(
            &mut e,
            vec![
                Action::Commit {
                    instance: 0,
                    cmd: put(9, 1, 3, 30),
                },
                Action::Reply {
                    client: NodeId(9),
                    req_id: 1,
                    instance: 0,
                },
            ],
            0,
        );
        // Effects and state-machine application are unaffected...
        assert!(fx
            .iter()
            .any(|e| matches!(e, EngineEffect::Committed { .. })));
        assert!(fx.iter().any(|e| matches!(e, EngineEffect::ReplyTo { .. })));
        assert_eq!(e.state().get(3), Some(30));
        // ...but no per-command history is retained.
        assert!(e.commits().is_empty());
        assert!(e.replies().is_empty());
        // The applier still rejects a divergent re-decide on its own.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive(
                &mut e,
                vec![Action::Commit {
                    instance: 0,
                    cmd: put(9, 2, 3, 31),
                }],
                0,
            );
        }));
        assert!(result.is_err(), "divergent re-decide must still panic");
    }

    /// A protocol that instantly decides whatever it is asked to
    /// advocate: one agreement (commit + reply) per `on_client_request`.
    /// Exactly what batch-semantics tests need — the number of
    /// `on_client_request` invocations *is* the number of agreements.
    struct Deciding {
        me: NodeId,
        next: Instance,
        /// Every advocated (client, req_id) in submission order.
        requests: Vec<(NodeId, u64)>,
        /// Last decision, replayable via `on_message` (a duplicate learn).
        last: Option<(Instance, Command)>,
    }

    impl Deciding {
        fn new() -> Self {
            Deciding {
                me: NodeId(0),
                next: 0,
                requests: Vec::new(),
                last: None,
            }
        }
    }

    impl Protocol for Deciding {
        type Msg = u8;

        fn node_id(&self) -> NodeId {
            self.me
        }

        fn on_start(&mut self, _now: Nanos, _out: &mut Outbox<u8>) {}

        fn on_message(&mut self, _from: NodeId, _msg: u8, _now: Nanos, out: &mut Outbox<u8>) {
            // A duplicate learn of the last decision.
            if let Some((inst, cmd)) = self.last.clone() {
                out.commit(inst, cmd.clone());
                out.reply(cmd.client, cmd.req_id, inst);
            }
        }

        fn on_timer(&mut self, _timer: Timer, _now: Nanos, _out: &mut Outbox<u8>) {}

        fn on_client_request(
            &mut self,
            client: NodeId,
            req_id: u64,
            op: Op,
            _now: Nanos,
            out: &mut Outbox<u8>,
        ) {
            self.requests.push((client, req_id));
            let cmd = Command::new(client, req_id, op);
            let inst = self.next;
            self.next += 1;
            self.last = Some((inst, cmd.clone()));
            out.commit(inst, cmd);
            out.reply(client, req_id, inst);
        }

        fn is_leader(&self) -> bool {
            true
        }

        fn leader_hint(&self) -> Option<NodeId> {
            Some(self.me)
        }
    }

    type D = ReplicaEngine<Deciding, KvStore>;

    fn batched(cfg: BatchConfig) -> D {
        ReplicaEngine::new(Deciding::new(), KvStore::new()).with_batching(cfg)
    }

    fn request(e: &mut D, client: u16, req_id: u64, op: Op, now: Nanos) -> Fx {
        let mut fx = Vec::new();
        e.handle(
            EngineEvent::ClientRequest {
                client: NodeId(client),
                req_id,
                op,
            },
            now,
            &mut fx,
        );
        fx
    }

    fn reply_ids(fx: &Fx) -> Vec<(NodeId, u64)> {
        fx.iter()
            .filter_map(|e| match e {
                EngineEffect::ReplyTo { client, req_id, .. } => Some((*client, *req_id)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn batch_flushes_on_max_size_as_one_agreement() {
        let mut e = batched(BatchConfig::new(3, 1_000_000));
        assert!(request(&mut e, 9, 1, Op::Put { key: 1, value: 10 }, 0).is_empty());
        assert!(request(&mut e, 10, 1, Op::Put { key: 2, value: 20 }, 0).is_empty());
        assert_eq!(e.pending_batch(), 2);
        let fx = request(&mut e, 11, 1, Op::Get { key: 1 }, 0);
        // One protocol-level agreement carried all three commands…
        assert_eq!(e.node().requests.len(), 1);
        assert_eq!(
            fx.iter()
                .filter(|f| matches!(f, EngineEffect::Committed { .. }))
                .count(),
            1
        );
        // …and fanned out per-client replies in submission order.
        assert_eq!(
            reply_ids(&fx),
            vec![(NodeId(9), 1), (NodeId(10), 1), (NodeId(11), 1)]
        );
        assert_eq!(e.pending_batch(), 0);
        assert_eq!(e.state().get(1), Some(10));
        assert_eq!(e.state().get(2), Some(20));
        // The Get inside the batch saw the preceding Put.
        match &fx[3] {
            EngineEffect::ReplyTo { value, .. } => assert_eq!(*value, Some(Some(10))),
            other => panic!("expected the Get's reply, got {other:?}"),
        }
    }

    #[test]
    fn batch_flushes_on_deadline_via_the_timer_table() {
        let mut e = batched(BatchConfig::new(100, 500));
        request(&mut e, 9, 1, Op::Noop, 0);
        request(&mut e, 10, 1, Op::Noop, 10);
        // The flush deadline is a real timer: next_deadline covers it, so
        // sleep-until-next-deadline harnesses cannot stall the batch.
        assert_eq!(e.next_deadline(), Some(500));
        assert_eq!(e.timer_deadline(BATCH_FLUSH), Some(500));
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(499, &mut fx), 0);
        assert!(fx.is_empty());
        assert_eq!(e.fire_due(500, &mut fx), 1);
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1), (NodeId(10), 1)]);
        assert_eq!(e.node().requests.len(), 1);
        assert_eq!(e.next_deadline(), None, "flush disarms the deadline");
    }

    #[test]
    fn singleton_batch_is_submitted_as_an_unbatched_command() {
        let mut e = batched(BatchConfig::new(8, 500));
        request(&mut e, 9, 1, Op::Put { key: 7, value: 70 }, 0);
        let mut fx = Vec::new();
        e.fire_due(500, &mut fx);
        // The protocol saw the client's own identity, not a batch source.
        assert_eq!(e.node().requests, vec![(NodeId(9), 1)]);
        match &fx[0] {
            EngineEffect::Committed { cmd, .. } => {
                assert_eq!(cmd.as_batch(), None);
                assert_eq!(cmd.id(), (NodeId(9), 1));
            }
            other => panic!("expected Committed, got {other:?}"),
        }
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1)]);
        assert_eq!(e.replies().len(), 1);
        assert_eq!(e.state().get(7), Some(70));
    }

    #[test]
    fn duplicate_request_inside_a_batch_is_submitted_once() {
        let mut e = batched(BatchConfig::new(100, 500));
        request(&mut e, 9, 1, Op::Put { key: 1, value: 1 }, 0);
        request(&mut e, 9, 1, Op::Put { key: 1, value: 1 }, 5); // client retry
        request(&mut e, 10, 1, Op::Noop, 10);
        assert_eq!(e.pending_batch(), 2, "retry coalesced away");
        let mut fx = Vec::new();
        e.fire_due(500, &mut fx);
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1), (NodeId(10), 1)]);
        assert_eq!(e.state().writes(), 1);
    }

    #[test]
    fn redecided_batch_does_not_fan_replies_out_twice() {
        let mut e = batched(BatchConfig::new(2, 1_000));
        request(&mut e, 9, 1, Op::Noop, 0);
        let fx = request(&mut e, 10, 1, Op::Noop, 0);
        assert_eq!(reply_ids(&fx).len(), 2);
        // A duplicate learn of the same batch decision arrives.
        let mut fx = Vec::new();
        e.handle(
            EngineEvent::Message {
                from: NodeId(1),
                msg: 0,
            },
            0,
            &mut fx,
        );
        assert!(
            fx.iter()
                .any(|f| matches!(f, EngineEffect::Committed { .. })),
            "the duplicate learn still surfaces for oracles"
        );
        assert!(reply_ids(&fx).is_empty(), "no duplicate client replies");
        assert_eq!(e.replies().len(), 2);
    }

    #[test]
    fn batched_equals_unbatched_state_and_replies() {
        // The same request stream through a batched and an unbatched
        // engine must land in identical state with identical reply sets.
        let ops = [
            (9u16, 1u64, Op::Put { key: 1, value: 10 }),
            (10, 1, Op::Put { key: 2, value: 20 }),
            (9, 2, Op::Get { key: 2 }),
            (11, 1, Op::Put { key: 1, value: 30 }),
            (10, 2, Op::Get { key: 1 }),
        ];
        let mut plain = ReplicaEngine::new(Deciding::new(), KvStore::new());
        let mut batch = batched(BatchConfig::new(2, 1_000));
        for (c, r, op) in ops.iter().cloned() {
            request(&mut plain, c, r, op.clone(), 0);
            request(&mut batch, c, r, op, 0);
        }
        let mut fx = Vec::new();
        batch.fire_due(1_000, &mut fx); // flush the odd tail
        assert_eq!(plain.state().digest(), batch.state().digest());
        let ids = |e: &D| -> Vec<(NodeId, u64)> {
            e.replies().iter().map(|r| (r.client, r.req_id)).collect()
        };
        assert_eq!(ids(&plain), ids(&batch));
        // Batching needed fewer agreements for the same work.
        assert_eq!(plain.node().requests.len(), 5);
        assert_eq!(batch.node().requests.len(), 3);
    }

    #[test]
    fn blocked_engine_holds_the_batch_until_unblocked() {
        let mut e = batched(BatchConfig::new(100, 500));
        request(&mut e, 9, 1, Op::Noop, 0);
        e.set_blocked(true);
        let mut fx = Vec::new();
        assert_eq!(e.fire_due(10_000, &mut fx), 0, "slow core gets no cycles");
        assert_eq!(e.pending_batch(), 1);
        e.set_blocked(false);
        assert_eq!(e.fire_due(10_000, &mut fx), 1);
        assert_eq!(reply_ids(&fx), vec![(NodeId(9), 1)]);
    }

    // ----------------------------------------------------------------
    // Adaptive batch depth (the controller; see AdaptiveBatch).
    // ----------------------------------------------------------------

    fn adaptive_cfg(cap: usize, delay: Nanos) -> AdaptiveBatch {
        AdaptiveBatch::new(cap, delay)
    }

    fn adaptive(cap: usize, delay: Nanos) -> D {
        ReplicaEngine::new(Deciding::new(), KvStore::new())
            .with_batching(BatchConfig::adaptive(adaptive_cfg(cap, delay)))
    }

    #[test]
    fn adaptive_starts_at_one_and_a_trickle_never_waits_out_the_deadline() {
        let mut e = adaptive(32, 1_000);
        assert_eq!(e.stats().depth, 1);
        // Requests spaced beyond the flush window: each one flushes
        // immediately as a singleton — zero added latency, no timer wait.
        for i in 0..5u64 {
            let now = i * 10_000;
            let fx = request(&mut e, 9, i + 1, Op::Noop, now);
            assert_eq!(reply_ids(&fx), vec![(NodeId(9), i + 1)], "request {i}");
            assert_eq!(e.stats().depth, 1, "trickle must not grow the depth");
        }
        assert_eq!(e.stats().grows, 0);
        assert_eq!(e.stats().size_flushes, 5);
    }

    #[test]
    fn adaptive_grows_under_back_to_back_demand_and_respects_the_cap() {
        let mut e = adaptive(8, 1_000);
        // A flood of concurrent requests: every size flush is followed by
        // another arrival within the window, so the depth climbs — but
        // never past the cap.
        for i in 0..200u64 {
            request(&mut e, (i % 100) as u16, i / 100 + 1, Op::Noop, 0);
            let d = e.stats().depth;
            assert!((1..=8).contains(&d), "depth {d} escaped [1, 8]");
        }
        assert_eq!(e.stats().depth, 8, "sustained demand must reach the cap");
        assert!(e.stats().grows >= 7);
        // Flush the tail so nothing is stranded.
        let mut fx = Vec::new();
        e.fire_due(1_000, &mut fx);
        assert_eq!(e.replies().len(), 200);
    }

    #[test]
    fn adaptive_converges_to_the_offered_burst_size() {
        // Constant offered load: bursts of 5 per flush window, rounds
        // spaced wider than the window but inside the idle threshold.
        let cfg = adaptive_cfg(16, 1_000);
        let mut e = adaptive(16, 1_000);
        assert!(5 * 1_000 < cfg.idle_after, "spacing must not look idle");
        let mut depths = Vec::new();
        for round in 0..20u64 {
            let t = round * 5_000;
            for c in 0..5u16 {
                request(&mut e, 10 + c, round + 1, Op::Noop, t);
            }
            let mut fx = Vec::new();
            e.fire_due(t + 1_000, &mut fx);
            depths.push(e.stats().depth);
        }
        // Fixed point: the depth settles at exactly the burst size and
        // stays there (one agreement per burst, no deadline waits).
        assert_eq!(&depths[15..], &[5, 5, 5, 5, 5], "depths: {depths:?}");
    }

    #[test]
    fn adaptive_snaps_down_when_load_drops() {
        let mut e = adaptive(32, 1_000);
        // Phase 1: saturate to grow the depth.
        for i in 0..60u64 {
            request(&mut e, (i % 60) as u16, 1, Op::Noop, 0);
        }
        let mut fx = Vec::new();
        e.fire_due(1_000, &mut fx);
        let grown = e.stats().depth;
        assert!(grown > 4, "saturation should have grown the depth: {grown}");
        // Phase 2: a thin trickle of deadline flushes. The first shrink
        // evaluation snaps to the (stale, high) peak; the following ones
        // see only the trickle and collapse the depth.
        for round in 1..=6u64 {
            let t = round * 10_000;
            request(&mut e, 99, round, Op::Noop, t);
            e.fire_due(t + 1_000, &mut fx);
        }
        let shrunk = e.stats().depth;
        assert!(shrunk <= 2, "load drop must shrink the depth: {shrunk}");
        assert!(e.stats().shrinks >= 1);
    }

    #[test]
    fn adaptive_idle_decay_resets_to_depth_one() {
        let cfg = adaptive_cfg(32, 1_000);
        let mut e = adaptive(32, 1_000);
        for i in 0..60u64 {
            request(&mut e, (i % 60) as u16, 1, Op::Noop, 0);
        }
        let mut fx = Vec::new();
        e.fire_due(1_000, &mut fx);
        assert!(e.stats().depth > 1);
        // A long silence, then one request: it must flush immediately at
        // depth 1 instead of waiting out the deadline at the old depth.
        let later = 1_000 + cfg.idle_after;
        let fx = request(&mut e, 77, 1, Op::Noop, later);
        assert_eq!(reply_ids(&fx), vec![(NodeId(77), 1)]);
        assert_eq!(e.stats().depth, 1);
        assert_eq!(e.stats().idle_decays, 1);
    }

    #[test]
    fn adaptive_backlog_knee_stops_growth() {
        // Scripted never commits, so every multi-command batch stays in
        // flight: with a knee of 1 the controller must stop growing (and
        // halve) as soon as one batch is outstanding, keeping the depth
        // pinned low no matter how hot the demand looks.
        let mut cfg = adaptive_cfg(32, 1_000);
        cfg.backlog_knee = 1;
        let mut e = ReplicaEngine::new(Scripted::new(), KvStore::new())
            .with_batching(BatchConfig::adaptive(cfg));
        let mut fx = Vec::new();
        for i in 0..100u64 {
            e.handle(
                EngineEvent::ClientRequest {
                    client: NodeId((i % 100) as u16),
                    req_id: 1,
                    op: Op::Noop,
                },
                0,
                &mut fx,
            );
            let d = e.stats().depth;
            assert!(d <= 2, "backlog past the knee must cap growth, got {d}");
        }
    }

    #[test]
    fn adaptive_batched_equals_unbatched_state_and_replies() {
        let ops = [
            (9u16, 1u64, Op::Put { key: 1, value: 10 }),
            (10, 1, Op::Put { key: 2, value: 20 }),
            (9, 2, Op::Get { key: 2 }),
            (11, 1, Op::Put { key: 1, value: 30 }),
            (10, 2, Op::Get { key: 1 }),
        ];
        let mut plain = ReplicaEngine::new(Deciding::new(), KvStore::new());
        let mut adapt = adaptive(8, 1_000);
        for (c, r, op) in ops.iter().cloned() {
            request(&mut plain, c, r, op.clone(), 0);
            request(&mut adapt, c, r, op, 0);
        }
        let mut fx = Vec::new();
        adapt.fire_due(1_000, &mut fx); // flush any tail
        assert_eq!(plain.state().digest(), adapt.state().digest());
        let ids = |e: &D| -> Vec<(NodeId, u64)> {
            e.replies().iter().map(|r| (r.client, r.req_id)).collect()
        };
        assert_eq!(ids(&plain), ids(&adapt));
    }

    #[test]
    fn retry_after_flush_is_resubmitted_and_applied_once() {
        // The dedup set is cleared at flush: a retry arriving *after* its
        // batch flushed is advocated again (the protocol may decide it in
        // a second slot), and the applier still executes it exactly once.
        let mut e = batched(BatchConfig::new(2, 1_000));
        request(&mut e, 9, 1, Op::Put { key: 1, value: 1 }, 0);
        request(&mut e, 10, 1, Op::Noop, 0); // flushes the pair
        request(&mut e, 9, 1, Op::Put { key: 1, value: 1 }, 5); // late retry
        request(&mut e, 11, 1, Op::Noop, 5); // flushes the retry pair
        assert_eq!(e.node().requests.len(), 2, "two agreements");
        assert_eq!(e.state().writes(), 1, "retried put applied once");
    }

    #[test]
    fn stats_track_flush_shapes() {
        let mut e = batched(BatchConfig::new(3, 500));
        for c in 0..3u16 {
            request(&mut e, 9 + c, 1, Op::Noop, 0);
        }
        request(&mut e, 20, 1, Op::Noop, 10);
        let mut fx = Vec::new();
        e.fire_due(510, &mut fx);
        let s = e.stats();
        assert_eq!(s.enqueued, 4);
        assert_eq!(s.flushes, 2);
        assert_eq!(s.flushed_commands, 4);
        assert_eq!(s.size_flushes, 1);
        assert_eq!(s.deadline_flushes, 1);
        assert_eq!(s.depth, 3, "fixed config reports its static depth");
        assert_eq!(s.mean_fill(), 2.0);
        // Unbatched engines report depth 1 and no flush activity.
        let plain = ReplicaEngine::new(Deciding::new(), KvStore::new());
        assert_eq!(plain.stats().depth, 1);
        assert_eq!(plain.stats().flushes, 0);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_timer() {
        let mut e = engine();
        assert_eq!(e.next_deadline(), None);
        drive(
            &mut e,
            vec![
                Action::SetTimer {
                    timer: Timer::Tick,
                    after: 300,
                },
                Action::SetTimer {
                    timer: Timer::Custom(0),
                    after: 100,
                },
            ],
            0,
        );
        assert_eq!(e.next_deadline(), Some(100));
        let mut fx = Vec::new();
        e.fire_due(100, &mut fx);
        assert_eq!(e.next_deadline(), Some(300));
    }
}
