//! Replicated-state-machine layer: in-order application of decided
//! commands with at-most-once execution per client.
//!
//! The agreement protocols decide a command per instance; this layer turns
//! the decided log into state-machine transitions. It tolerates commands
//! being decided out of instance order (buffering until the gap fills) and
//! duplicate submissions of the same `(client, req_id)` (a client that
//! timed out and re-sent to another replica may get its command decided
//! twice; only the first decision is applied).
//!
//! A decided [`Op::Batch`] is unpacked here: each constituent command is
//! applied individually, in payload order, under the same per-client
//! at-most-once rule — so a command that travelled in two different
//! batches (a client retry re-coalesced elsewhere) still executes once,
//! and its output is recorded under its own `(client, req_id)` for reply
//! routing. Batches themselves are deduplicated only through their
//! constituents: engine batch ids are not session-tracked, because
//! batches from one engine can legally commit out of submission order
//! across leader changes (unlike closed-loop clients).

use std::collections::BTreeMap;

use crate::types::{Command, Instance, NodeId, Op};

/// A deterministic state machine replicated by the agreement protocols.
pub trait StateMachine {
    /// Output of applying one operation (e.g. the value read).
    type Output: Clone + std::fmt::Debug;

    /// Serializable image of the full state at an instance watermark,
    /// sufficient to rebuild an equivalent machine on another replica
    /// ([`Self::install`]). For a 2PC participant this must cover the
    /// in-flight transaction state too (staged fragments, locks, parked
    /// waiters, recorded outcomes), or recovery breaks across a
    /// snapshot boundary.
    type Snapshot: Clone + std::fmt::Debug;

    /// Applies `op` and returns its output. Must be deterministic.
    fn apply(&mut self, op: Op) -> Self::Output;

    /// Captures the current state as a snapshot.
    fn snapshot(&self) -> Self::Snapshot;

    /// Replaces the current state with `snap`. After installing the
    /// snapshot a peer took at watermark `w`, applying the decided log
    /// from `w` onward must yield the same state the peer reaches.
    fn install(&mut self, snap: Self::Snapshot);

    /// Transaction-participant counters, for engine stats attribution
    /// (see [`TxnStats`]). State machines that are not 2PC participants
    /// report zeros.
    fn txn_stats(&self) -> TxnStats {
        TxnStats::default()
    }
}

/// Counters a 2PC participant state machine maintains about its prepare
/// traffic (see `KvStore`), surfaced through
/// [`StateMachine::txn_stats`] into `EngineStats` so benches can
/// attribute cross-shard transaction behaviour per shard: how many
/// prepares arrived, how many parked in the lock-wait queue instead of
/// aborting, how deep the queue got, and how many were turned away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Applied `TxnPrepare` commands (coordinator re-probes of a parked
    /// transaction count again — the counter measures prepare traffic,
    /// not distinct transactions).
    pub prepares: u64,
    /// Prepares that parked in the lock-wait queue (`TxnVote::Wait`).
    pub lock_waits: u64,
    /// Prepares refused retryably (`TxnVote::Busy`): younger than a
    /// conflicting holder (wait-die) or the queue was full.
    pub busy_rejects: u64,
    /// Prepares answered with a hard no (`TxnVote::Abort`): the
    /// transaction was already finished as aborted.
    pub vote_aborts: u64,
    /// High-water mark of the lock-wait queue depth.
    pub wait_depth: usize,
    /// Current size of the finished-transaction outcome table — an
    /// RSS proxy: with per-coordinator GC it must stay O(coordinators ×
    /// window) instead of growing with the transaction count.
    pub finished_len: usize,
}

impl TxnStats {
    /// Folds `other` into `self`: counters add, `wait_depth` keeps the
    /// maximum (the aggregate of independent shards has no single
    /// depth; the deepest queue is the one that bounds waiting).
    pub fn absorb(&mut self, other: &TxnStats) {
        self.prepares += other.prepares;
        self.lock_waits += other.lock_waits;
        self.busy_rejects += other.busy_rejects;
        self.vote_aborts += other.vote_aborts;
        self.wait_depth = self.wait_depth.max(other.wait_depth);
        // Shards hold disjoint outcome tables, so the aggregate size is
        // the sum.
        self.finished_len += other.finished_len;
    }
}

/// Applies decided commands to a [`StateMachine`] in instance order,
/// deduplicating per-client request ids.
///
/// # Examples
///
/// ```
/// use onepaxos::rsm::{Applier, StateMachine};
/// use onepaxos::kv::KvStore;
/// use onepaxos::{Command, Instance, NodeId, Op};
///
/// let mut applier: Applier<KvStore> = Applier::new(KvStore::new());
/// // Instance 1 arrives before instance 0: buffered.
/// applier.on_decided(1, Command::new(NodeId(9), 2, Op::Put { key: 1, value: 20 }));
/// assert_eq!(applier.applied_up_to(), None);
/// applier.on_decided(0, Command::new(NodeId(9), 1, Op::Put { key: 1, value: 10 }));
/// assert_eq!(applier.applied_up_to(), Some(1));
/// assert_eq!(applier.state().get(1), Some(20));
/// ```
#[derive(Debug)]
pub struct Applier<S: StateMachine> {
    state: S,
    /// Next instance to apply; everything below has been applied.
    next: Instance,
    /// First instance still retained in `applied_log`: everything below
    /// it was dropped by an agreed [`Op::Truncate`] (or never replayed
    /// here because a snapshot at this watermark was installed).
    log_base: Instance,
    /// Decided but not yet applicable (gap before them).
    pending: BTreeMap<Instance, Command>,
    /// Highest applied req_id per client plus its output, for dedup and
    /// reply re-delivery.
    sessions: BTreeMap<NodeId, (u64, S::Output)>,
    /// Output of the **latest** applied request per client, keyed by
    /// `(client, req_id)` for reply lookup. Bounded to one entry per
    /// client: the at-most-once session protocol means a client never
    /// asks about a request older than its newest, so retaining every
    /// reply ever produced was a pure leak.
    outputs: BTreeMap<(NodeId, u64), S::Output>,
    /// Applied command log from `log_base` up (cross-replica
    /// consistency checks, duplicate-decision verification).
    applied_log: Vec<Command>,
}

/// Everything a replica needs to adopt a peer's applied prefix without
/// replaying it: the state-machine image plus the at-most-once session
/// table, both taken at `watermark` (see [`Applier::snapshot`]).
#[derive(Debug)]
pub struct ApplierSnapshot<S: StateMachine> {
    /// First instance NOT covered: the installer resumes applying here.
    pub watermark: Instance,
    /// The state machine's own image.
    pub state: S::Snapshot,
    /// The session table: highest applied req_id and its output per
    /// client. Without it an installer would re-apply client retries
    /// the snapshotting replica already executed.
    pub sessions: Vec<(NodeId, (u64, S::Output))>,
}

impl<S: StateMachine> Clone for ApplierSnapshot<S> {
    fn clone(&self) -> Self {
        ApplierSnapshot {
            watermark: self.watermark,
            state: self.state.clone(),
            sessions: self.sessions.clone(),
        }
    }
}

impl<S: StateMachine> Applier<S> {
    /// Wraps `state`, expecting the decided log to start at instance 0.
    pub fn new(state: S) -> Self {
        Applier {
            state,
            next: 0,
            log_base: 0,
            pending: BTreeMap::new(),
            sessions: BTreeMap::new(),
            outputs: BTreeMap::new(),
            applied_log: Vec::new(),
        }
    }

    /// Records that `cmd` was decided in `instance` and applies every
    /// now-contiguous command. Returns the number of commands applied.
    ///
    /// Deciding the same instance twice with the same command is idempotent;
    /// with a *different* command it panics, because that is precisely the
    /// consistency violation the protocols must rule out (Appendix B).
    /// Below the truncation watermark the retained log is gone, so a
    /// re-decision there is accepted idempotently without the equality
    /// check (harness-level oracles still verify those).
    ///
    /// # Panics
    ///
    /// Panics if `instance` was already decided with a different command
    /// and is still above the truncation watermark.
    pub fn on_decided(&mut self, instance: Instance, cmd: Command) -> usize {
        if instance < self.next {
            if instance >= self.log_base {
                let prior = &self.applied_log[(instance - self.log_base) as usize];
                assert_eq!(
                    *prior, cmd,
                    "consistency violation: instance {instance} decided twice with different commands"
                );
            }
            return 0;
        }
        if let Some(prior) = self.pending.get(&instance) {
            assert_eq!(
                *prior, cmd,
                "consistency violation: instance {instance} decided twice with different commands"
            );
            return 0;
        }
        self.pending.insert(instance, cmd);
        let mut applied = 0;
        while let Some(cmd) = self.pending.remove(&self.next) {
            self.apply_one(cmd);
            self.next += 1;
            applied += 1;
        }
        applied
    }

    fn apply_one(&mut self, cmd: Command) {
        if let Op::Batch(cmds) = &cmd.op {
            for inner in cmds.clone().iter() {
                debug_assert!(
                    !matches!(inner.op, Op::Batch(_)),
                    "nested batch decided in the log"
                );
                self.apply_single(inner.clone());
            }
        } else {
            self.apply_single(cmd.clone());
        }
        self.applied_log.push(cmd);
    }

    /// Applies one non-batch command under the per-client at-most-once
    /// rule, recording its output for reply lookup.
    fn apply_single(&mut self, cmd: Command) {
        let dup = self
            .sessions
            .get(&cmd.client)
            .is_some_and(|&(last, _)| cmd.req_id <= last);
        if !dup {
            let out = self.state.apply(cmd.op.clone());
            // One retained reply per client: the session protocol makes
            // req_ids monotone per client, so the previous entry can no
            // longer be asked for.
            if let Some(&(prev, _)) = self.sessions.get(&cmd.client) {
                self.outputs.remove(&(cmd.client, prev));
            }
            self.sessions.insert(cmd.client, (cmd.req_id, out.clone()));
            self.outputs.insert(cmd.id(), out);
            // An agreed truncation point: every replica of this shard
            // applies it at the same instance, so dropping the prefix
            // here keeps replicas byte-identical.
            if let Op::Truncate { watermark } = cmd.op {
                self.truncate(watermark);
            }
        }
    }

    /// Drops the retained log below `watermark` (clamped to the applied
    /// prefix). Invoked by an applied [`Op::Truncate`]; harnesses may
    /// also call it directly in tests. Returns the new log base.
    pub fn truncate(&mut self, watermark: Instance) -> Instance {
        let to = watermark.min(self.next).max(self.log_base);
        self.applied_log.drain(..(to - self.log_base) as usize);
        self.log_base = to;
        to
    }

    /// Captures the applied prefix `[0, watermark)` as an installable
    /// snapshot: state-machine image + session table, with
    /// `watermark = ` the next instance this replica would apply.
    pub fn snapshot(&self) -> ApplierSnapshot<S> {
        ApplierSnapshot {
            watermark: self.next,
            state: self.state.snapshot(),
            sessions: self.sessions.iter().map(|(&c, s)| (c, s.clone())).collect(),
        }
    }

    /// Adopts a peer's snapshot, replacing local state wholesale, and
    /// resumes applying at `snap.watermark`. Decided-but-buffered
    /// commands the snapshot already covers are discarded; later ones
    /// are kept and applied as the live log catches up past them.
    ///
    /// A snapshot at or below what this replica already applied is
    /// ignored (returns `false`): installing it would rewind the
    /// session table and re-apply commands.
    pub fn install_snapshot(&mut self, snap: ApplierSnapshot<S>) -> bool {
        if snap.watermark <= self.next {
            return false;
        }
        self.state.install(snap.state);
        self.sessions.clear();
        self.outputs.clear();
        for (client, (req_id, out)) in snap.sessions {
            self.outputs.insert((client, req_id), out.clone());
            self.sessions.insert(client, (req_id, out));
        }
        self.next = snap.watermark;
        self.log_base = snap.watermark;
        self.applied_log.clear();
        self.pending = self.pending.split_off(&snap.watermark);
        true
    }

    /// The wrapped state machine.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The highest applied instance, or `None` if nothing applied yet.
    pub fn applied_up_to(&self) -> Option<Instance> {
        self.next.checked_sub(1)
    }

    /// Output recorded for `(client, req_id)`, if it is the client's
    /// latest applied request (older replies are dropped).
    pub fn output_of(&self, client: NodeId, req_id: u64) -> Option<&S::Output> {
        self.outputs.get(&(client, req_id))
    }

    /// The retained applied command log, starting at [`Self::log_base`]
    /// (for cross-replica consistency checks).
    pub fn applied_log(&self) -> &[Command] {
        &self.applied_log
    }

    /// First instance still present in [`Self::applied_log`].
    pub fn log_base(&self) -> Instance {
        self.log_base
    }

    /// Number of retained reply outputs (RSS proxy; O(clients) by
    /// construction).
    pub fn outputs_len(&self) -> usize {
        self.outputs.len()
    }

    /// Number of decided-but-unappliable commands (log gaps ahead of them).
    pub fn gap_backlog(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvStore;

    fn cmd(client: u16, req: u64, op: Op) -> Command {
        Command::new(NodeId(client), req, op)
    }

    #[test]
    fn applies_in_order_with_gaps() {
        let mut a = Applier::new(KvStore::new());
        assert_eq!(a.on_decided(2, cmd(1, 3, Op::Noop)), 0);
        assert_eq!(a.on_decided(0, cmd(1, 1, Op::Put { key: 7, value: 1 })), 1);
        assert_eq!(a.gap_backlog(), 1);
        assert_eq!(a.on_decided(1, cmd(1, 2, Op::Put { key: 7, value: 2 })), 2);
        assert_eq!(a.applied_up_to(), Some(2));
        assert_eq!(a.state().get(7), Some(2));
    }

    #[test]
    fn duplicate_decision_same_command_is_idempotent() {
        let mut a = Applier::new(KvStore::new());
        let c = cmd(1, 1, Op::Put { key: 1, value: 9 });
        a.on_decided(0, c.clone());
        assert_eq!(a.on_decided(0, c), 0);
        assert_eq!(a.applied_log().len(), 1);
    }

    #[test]
    fn batch_applies_constituents_in_order_with_outputs() {
        let mut a = Applier::new(KvStore::new());
        let b = Command::batch(
            NodeId(0),
            1,
            vec![
                cmd(1, 1, Op::Put { key: 3, value: 30 }),
                cmd(2, 1, Op::Get { key: 3 }),
                cmd(1, 2, Op::Put { key: 3, value: 31 }),
            ],
        );
        assert_eq!(a.on_decided(0, b), 1);
        // One log slot, three applied operations.
        assert_eq!(a.applied_log().len(), 1);
        assert_eq!(a.state().writes(), 2);
        // The Get inside the batch saw the Put that preceded it.
        assert_eq!(a.output_of(NodeId(2), 1), Some(&Some(30)));
        assert_eq!(a.output_of(NodeId(1), 2), Some(&Some(30)));
        assert_eq!(a.state().get(3), Some(31));
    }

    #[test]
    fn command_retried_across_batches_applies_once() {
        let mut a = Applier::new(KvStore::new());
        let retried = cmd(1, 1, Op::Put { key: 5, value: 50 });
        a.on_decided(0, Command::batch(NodeId(0), 1, vec![retried.clone()]));
        a.on_decided(
            1,
            Command::batch(NodeId(1), 1, vec![retried, cmd(2, 1, Op::Noop)]),
        );
        assert_eq!(a.state().writes(), 1);
        assert_eq!(a.applied_log().len(), 2);
    }

    #[test]
    fn batches_from_one_engine_may_commit_out_of_order() {
        // Engine batch ids are not session-tracked: batch seq 2 deciding
        // before seq 1 (leader churn re-ordering) must not suppress seq 1.
        let mut a = Applier::new(KvStore::new());
        a.on_decided(
            0,
            Command::batch(NodeId(0), 2, vec![cmd(2, 1, Op::Put { key: 1, value: 2 })]),
        );
        a.on_decided(
            1,
            Command::batch(NodeId(0), 1, vec![cmd(3, 1, Op::Put { key: 2, value: 3 })]),
        );
        assert_eq!(a.state().get(1), Some(2));
        assert_eq!(a.state().get(2), Some(3));
        assert_eq!(a.state().writes(), 2);
    }

    #[test]
    #[should_panic(expected = "consistency violation")]
    fn duplicate_decision_different_command_panics() {
        let mut a = Applier::new(KvStore::new());
        a.on_decided(0, cmd(1, 1, Op::Noop));
        a.on_decided(0, cmd(2, 1, Op::Noop));
    }

    #[test]
    fn client_resubmission_applies_once() {
        let mut a = Applier::new(KvStore::new());
        // Client 1's request 1 committed in two instances (client retried).
        a.on_decided(0, cmd(1, 1, Op::Put { key: 5, value: 1 }));
        a.on_decided(1, cmd(1, 1, Op::Put { key: 5, value: 1 }));
        a.on_decided(2, cmd(1, 2, Op::Put { key: 5, value: 2 }));
        assert_eq!(a.state().get(5), Some(2));
        // The duplicate is in the log but was not re-applied.
        assert_eq!(a.applied_log().len(), 3);
        assert_eq!(a.state().writes(), 2);
    }

    #[test]
    fn outputs_are_recorded_per_request() {
        let mut a = Applier::new(KvStore::new());
        a.on_decided(0, cmd(1, 1, Op::Put { key: 3, value: 30 }));
        a.on_decided(1, cmd(2, 1, Op::Get { key: 3 }));
        assert_eq!(a.output_of(NodeId(2), 1), Some(&Some(30)));
        assert_eq!(a.output_of(NodeId(1), 1), Some(&None));
        assert_eq!(a.output_of(NodeId(3), 1), None);
    }

    #[test]
    fn outputs_stay_bounded_by_client_count() {
        // The unbounded-outputs regression: 10 000 requests from one
        // client must retain exactly one reply output — the latest per
        // client — so the map is O(clients), not O(requests).
        let mut a = Applier::new(KvStore::new());
        for i in 0..10_000u64 {
            a.on_decided(
                i,
                cmd(
                    1,
                    i + 1,
                    Op::Put {
                        key: i % 7,
                        value: i,
                    },
                ),
            );
        }
        assert_eq!(a.outputs_len(), 1);
        // The newest request is still answerable; its predecessor is not.
        assert!(a.output_of(NodeId(1), 10_000).is_some());
        assert_eq!(a.output_of(NodeId(1), 9_999), None);
        // A second client adds exactly one more retained output.
        a.on_decided(10_000, cmd(2, 1, Op::Get { key: 0 }));
        assert_eq!(a.outputs_len(), 2);
    }

    #[test]
    fn old_req_ids_are_stale() {
        let mut a = Applier::new(KvStore::new());
        a.on_decided(0, cmd(1, 5, Op::Put { key: 1, value: 5 }));
        // A very old retry decided later must not clobber newer state.
        a.on_decided(1, cmd(1, 4, Op::Put { key: 1, value: 4 }));
        assert_eq!(a.state().get(1), Some(5));
    }
}
