//! Collapsed Multi-Paxos, "arguably the most efficient consensus protocol
//! to date" (§7) and the paper's strongest baseline.
//!
//! "After a proposer p takes the leadership position for one instance, it
//! could be more efficient if p assumes this position for the next Paxos
//! instance as well. The other proposers can still try to become leaders
//! when they suspect that the last leader has failed" (§2.3).
//!
//! Every node plays all three roles (proposer, acceptor, learner —
//! "Collapsed Paxos", §2.3 footnote 5). The stable leader skips phase 1
//! and sends one `accept` per command; each acceptor broadcasts a `learn`
//! to every learner, which learns on a majority of same-ballot votes. With
//! three nodes this costs 8 inter-replica messages per command — the count
//! behind Multi-Paxos's early saturation on a many-core (Fig 2, Fig 8).
//!
//! Bootstrap: all nodes start with the configured initial leader already
//! elected at ballot `(1, leader)`, modelling the steady state the paper
//! measures; failover runs a real phase 1.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::basic_paxos::QuorumLearner;
use crate::config::ClusterConfig;
use crate::failure::FailureDetector;
use crate::outbox::{Outbox, Timer};
use crate::protocol::Protocol;
use crate::types::{Ballot, Command, Instance, Nanos, NodeId, Op};

/// Wire messages of collapsed Multi-Paxos.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Forward a client command to the leader.
    Forward {
        /// The advocated command.
        cmd: Command,
    },
    /// Phase-1 request covering all instances at or above `from_inst`.
    Prepare {
        /// The candidate's ballot.
        bal: Ballot,
        /// First instance the candidate needs state for.
        from_inst: Instance,
    },
    /// Phase-1 response carrying the accepted suffix.
    Promise {
        /// The promised ballot.
        bal: Ballot,
        /// Accepted proposals at or above the requested instance.
        accepted: Vec<(Instance, Ballot, Command)>,
    },
    /// Phase-1 refusal with the higher promised ballot.
    PrepareNack {
        /// The acceptor's promised ballot.
        promised: Ballot,
    },
    /// Phase-2 request for one instance.
    Accept {
        /// The leader's ballot.
        bal: Ballot,
        /// Target instance.
        inst: Instance,
        /// Proposed command.
        cmd: Command,
    },
    /// Phase-2 refusal with the higher promised ballot.
    AcceptNack {
        /// The acceptor's promised ballot.
        promised: Ballot,
    },
    /// Acceptor → learners broadcast of an acceptance.
    Learn {
        /// Target instance.
        inst: Instance,
        /// Ballot under which the command was accepted.
        bal: Ballot,
        /// Accepted command.
        cmd: Command,
    },
    /// Leader liveness beacon.
    Heartbeat {
        /// The leader's ballot.
        bal: Ballot,
    },
    /// Refusal of a `Prepare`/`Accept` that reaches below the acceptor's
    /// agreed-truncation floor: everything below `floor` is decided,
    /// applied and covered by a snapshot, so the acceptor no longer holds
    /// (or re-decides) per-instance state there. The stale sender
    /// fast-forwards and relies on snapshot install for the gap.
    Truncated {
        /// The acceptor's truncation floor.
        floor: Instance,
    },
}

/// Timing knobs (tick period and leader-suspicion timeout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Maintenance tick period.
    pub tick: Nanos,
    /// Silence after which the leader is suspected.
    pub suspect_after: Nanos,
}

impl Default for Timing {
    /// 100 µs tick, 2 ms suspicion — appropriate for the paper's
    /// microsecond-scale network.
    fn default() -> Self {
        Timing {
            tick: 100_000,
            suspect_after: 2_000_000,
        }
    }
}

#[derive(Debug)]
struct Electing {
    bal: Ballot,
    promises: BTreeSet<NodeId>,
    /// Highest-ballot accepted proposal per instance, from promises.
    prior: BTreeMap<Instance, (Ballot, Command)>,
}

/// A collapsed Multi-Paxos node.
///
/// # Examples
///
/// ```
/// use onepaxos::multipaxos::MultiPaxosNode;
/// use onepaxos::testnet::TestNet;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |m, me| {
///     MultiPaxosNode::new(ClusterConfig::new(m.to_vec(), me))
/// });
/// net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.replies().len(), 1);
/// net.assert_consistent();
/// ```
#[derive(Debug)]
pub struct MultiPaxosNode {
    cfg: ClusterConfig,
    timing: Timing,
    /// Acceptor: highest promised ballot.
    promised: Ballot,
    /// Acceptor: accepted proposal per instance.
    accepted: BTreeMap<Instance, (Ballot, Command)>,
    /// Learner.
    learner: QuorumLearner<Command>,
    /// Command id → instance for every decided command (re-proposal
    /// dedup for retries and re-forwards).
    decided_ids: BTreeMap<(NodeId, u64), Instance>,
    /// Contiguous chosen prefix (next instance expected to be decided).
    watermark: Instance,
    /// Agreed-truncation floor: per-instance state below it is dropped
    /// and the acceptor refuses prepares/accepts reaching below it. This
    /// keeps a lagging candidate whose prepare quorum is entirely
    /// truncated acceptors from re-filling an already-decided (and
    /// already-applied) slot with a no-op.
    trunc_floor: Instance,
    /// Proposer.
    leading: bool,
    leader: Option<NodeId>,
    next_instance: Instance,
    proposed: BTreeMap<Instance, Command>,
    queue: VecDeque<Command>,
    /// Commands forwarded to the leader with forwarding time: if they are
    /// not decided within the suspicion timeout, the leader is slow even
    /// if its heartbeats still trickle in — the demand-driven detection
    /// of §7.6.
    forwarded: BTreeMap<(NodeId, u64), (Command, Nanos)>,
    electing: Option<Electing>,
    my_clients: BTreeSet<(NodeId, u64)>,
    fd: FailureDetector,
    noop_seq: u64,
}

impl MultiPaxosNode {
    /// Creates a node with [`Timing::default`]; `cfg.initial_leader()`
    /// starts as the established leader.
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::with_timing(cfg, Timing::default())
    }

    /// Creates a node with explicit timing knobs.
    pub fn with_timing(cfg: ClusterConfig, timing: Timing) -> Self {
        let leader = cfg.initial_leader();
        let leading = cfg.me() == leader;
        let fd = FailureDetector::new(timing.suspect_after);
        MultiPaxosNode {
            promised: Ballot::new(1, leader),
            accepted: BTreeMap::new(),
            learner: QuorumLearner::new(),
            decided_ids: BTreeMap::new(),
            watermark: 0,
            trunc_floor: 0,
            leading,
            leader: Some(leader),
            next_instance: 0,
            proposed: BTreeMap::new(),
            queue: VecDeque::new(),
            forwarded: BTreeMap::new(),
            electing: None,
            my_clients: BTreeSet::new(),
            fd,
            noop_seq: 0,
            cfg,
            timing,
        }
    }

    fn me(&self) -> NodeId {
        self.cfg.me()
    }

    /// The contiguous decided prefix (all instances below are committed).
    pub fn watermark(&self) -> Instance {
        self.watermark
    }

    /// Number of commands waiting for a leader.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Proposes `cmd` in a fresh instance (leader only). A command that is
    /// already decided is answered (if we owe its client a reply) instead
    /// of being re-proposed.
    fn propose(&mut self, cmd: Command, out: &mut Outbox<Msg>) {
        debug_assert!(self.leading);
        if let Some(&inst) = self.decided_ids.get(&cmd.id()) {
            if self.my_clients.remove(&cmd.id()) {
                out.reply(cmd.client, cmd.req_id, inst);
            }
            return;
        }
        let inst = self.next_instance;
        self.next_instance += 1;
        self.proposed.insert(inst, cmd.clone());
        let bal = self.promised;
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Accept {
                    bal,
                    inst,
                    cmd: cmd.clone(),
                },
            );
        }
        self.accept_locally(inst, bal, cmd, out);
    }

    /// The local acceptor accepts and broadcasts its learn.
    fn accept_locally(&mut self, inst: Instance, bal: Ballot, cmd: Command, out: &mut Outbox<Msg>) {
        self.accepted.insert(inst, (bal, cmd.clone()));
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Learn {
                    inst,
                    bal,
                    cmd: cmd.clone(),
                },
            );
        }
        self.on_learn_vote(self.me(), inst, bal, cmd, out);
    }

    fn on_learn_vote(
        &mut self,
        from: NodeId,
        inst: Instance,
        bal: Ballot,
        cmd: Command,
        out: &mut Outbox<Msg>,
    ) {
        if inst < self.trunc_floor {
            // Stale vote for a slot that is already applied and
            // snapshotted; counting it could re-choose the slot.
            return;
        }
        let quorum = self.cfg.majority();
        if let Some(chosen) = self.learner.on_learn(inst, from, bal, cmd, quorum) {
            let id = chosen.id();
            out.commit(inst, chosen);
            self.decided_ids.entry(id).or_insert(inst);
            self.forwarded.remove(&id);
            if let Some(pinned) = self.proposed.remove(&inst) {
                // Our proposal lost the slot to another leader's command:
                // re-advocate it instead of dropping it.
                if pinned.id() != id && !self.decided_ids.contains_key(&pinned.id()) {
                    self.queue.push_back(pinned);
                }
            }
            while self.learner.chosen(self.watermark).is_some() {
                self.watermark += 1;
            }
            if self.my_clients.remove(&id) {
                out.reply(id.0, id.1, inst);
            }
        }
    }

    /// Starts phase 1 with a ballot above everything seen.
    fn start_election(&mut self, out: &mut Outbox<Msg>) {
        let bal = self.promised.next_for(self.me());
        self.electing = Some(Electing {
            bal,
            promises: BTreeSet::new(),
            prior: BTreeMap::new(),
        });
        let from_inst = self.watermark;
        for peer in self.cfg.others() {
            out.send(peer, Msg::Prepare { bal, from_inst });
        }
        // Local acceptor promises immediately (bal > promised by
        // construction).
        self.promised = bal;
        let accepted = self.accepted_suffix(from_inst);
        self.on_promise(self.me(), bal, accepted, out);
    }

    fn accepted_suffix(&self, from_inst: Instance) -> Vec<(Instance, Ballot, Command)> {
        self.accepted
            .range(from_inst..)
            .map(|(&i, (b, c))| (i, *b, c.clone()))
            .collect()
    }

    fn on_promise(
        &mut self,
        from: NodeId,
        bal: Ballot,
        accepted: Vec<(Instance, Ballot, Command)>,
        out: &mut Outbox<Msg>,
    ) {
        let majority = self.cfg.majority();
        let Some(e) = self.electing.as_mut() else {
            return;
        };
        if e.bal != bal {
            return;
        }
        e.promises.insert(from);
        for (inst, abal, cmd) in accepted {
            let better = e.prior.get(&inst).is_none_or(|&(pb, _)| abal > pb);
            if better {
                e.prior.insert(inst, (abal, cmd));
            }
        }
        if e.promises.len() < majority {
            return;
        }
        // Elected.
        let e = self.electing.take().expect("checked above");
        self.leading = true;
        self.leader = Some(self.me());
        let max_prior = e.prior.keys().next_back().copied();
        self.next_instance = self
            .next_instance
            .max(self.watermark)
            .max(max_prior.map_or(0, |i| i + 1));
        // Re-propose prior accepted values under the new ballot, filling
        // gaps with no-ops so the log stays contiguous.
        let start = self.watermark;
        let end = max_prior.map_or(start, |i| i + 1);
        for inst in start..end {
            let cmd = match e.prior.get(&inst) {
                Some((_, cmd)) => cmd.clone(),
                None => {
                    self.noop_seq += 1;
                    Command::noop(self.me(), self.noop_seq)
                }
            };
            self.proposed.insert(inst, cmd.clone());
            for peer in self.cfg.others() {
                out.send(
                    peer,
                    Msg::Accept {
                        bal,
                        inst,
                        cmd: cmd.clone(),
                    },
                );
            }
            self.accept_locally(inst, bal, cmd, out);
        }
        // Drain commands that queued up while electing.
        while let Some(cmd) = self.queue.pop_front() {
            self.propose(cmd, out);
        }
    }

    fn step_down(&mut self, higher: Ballot) {
        if higher > self.promised {
            self.promised = higher;
        }
        self.leading = false;
        self.electing = None;
        self.leader = Some(higher.node);
        // Re-advocate proposals that were still in flight: the new leader
        // may not have seen them. The RSM session layer deduplicates the
        // cases where both copies commit.
        let orphans: Vec<Command> = self.proposed.values().cloned().collect();
        self.proposed.clear();
        self.queue.extend(orphans);
    }

    fn leader_suspected(&self, now: Nanos) -> bool {
        match self.leader {
            Some(l) if l != self.me() => self.fd.suspects(l, now),
            Some(_) => false,
            None => true,
        }
    }

    /// Drops all per-instance state below `watermark` and fast-forwards
    /// past it. Reached when the engine applies an [`Op::Truncate`]
    /// locally, or when a peer acceptor reports its floor
    /// ([`Msg::Truncated`]) to this stale proposer. Proposals pinned below
    /// the floor that are not known decided are re-advocated in fresh
    /// instances; the RSM session layer deduplicates.
    fn apply_truncate(&mut self, watermark: Instance) {
        if watermark <= self.trunc_floor {
            return;
        }
        self.trunc_floor = watermark;
        // Re-advocate pinned-but-undecided proposals from truncated slots
        // *before* pruning the dedup map that filters them.
        let keep = self.proposed.split_off(&watermark);
        let orphans: Vec<Command> = std::mem::replace(&mut self.proposed, keep)
            .into_values()
            .filter(|c| !self.decided_ids.contains_key(&c.id()))
            .collect();
        self.queue.extend(orphans);
        self.accepted = self.accepted.split_off(&watermark);
        self.learner.truncate(watermark);
        self.decided_ids.retain(|_, &mut inst| inst >= watermark);
        self.watermark = self.watermark.max(watermark);
        while self.learner.chosen(self.watermark).is_some() {
            self.watermark += 1;
        }
        self.next_instance = self.next_instance.max(watermark);
    }
}

impl Protocol for MultiPaxosNode {
    type Msg = Msg;

    fn node_id(&self) -> NodeId {
        self.cfg.me()
    }

    fn on_start(&mut self, now: Nanos, out: &mut Outbox<Msg>) {
        for peer in self.cfg.others() {
            self.fd.reset(peer, now);
        }
        out.set_timer(Timer::Tick, self.timing.tick);
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, now: Nanos, out: &mut Outbox<Msg>) {
        self.fd.heard(from, now);
        match msg {
            Msg::Forward { cmd } => {
                // The node the client contacted owns the reply; the leader
                // only advocates the command.
                if self.leading {
                    self.propose(cmd, out);
                } else {
                    // Not the leader (any more): queue; the tick will
                    // re-forward or take over.
                    self.queue.push_back(cmd);
                }
            }
            Msg::Prepare { bal, from_inst } => {
                if from_inst < self.trunc_floor {
                    // Our accepted suffix no longer covers [from_inst,
                    // floor): promising would hide possibly-decided values
                    // from the candidate, letting it fill those slots with
                    // no-ops. Refuse; the candidate fast-forwards and
                    // retries from the floor.
                    out.send(
                        from,
                        Msg::Truncated {
                            floor: self.trunc_floor,
                        },
                    );
                    return;
                }
                if bal > self.promised {
                    self.promised = bal;
                    if self.leading || self.electing.is_some() {
                        self.step_down(bal);
                    }
                    self.leader = Some(from);
                    let accepted = self.accepted_suffix(from_inst);
                    out.send(from, Msg::Promise { bal, accepted });
                } else {
                    out.send(
                        from,
                        Msg::PrepareNack {
                            promised: self.promised,
                        },
                    );
                }
            }
            Msg::Promise { bal, accepted } => {
                self.on_promise(from, bal, accepted, out);
            }
            Msg::PrepareNack { promised } | Msg::AcceptNack { promised } => {
                if promised > self.promised {
                    self.step_down(promised);
                }
            }
            Msg::Accept { bal, inst, cmd } => {
                if inst < self.trunc_floor {
                    // The slot is decided, applied and snapshotted;
                    // accepting could let a stale leader re-decide it.
                    out.send(
                        from,
                        Msg::Truncated {
                            floor: self.trunc_floor,
                        },
                    );
                    return;
                }
                if bal >= self.promised {
                    if self.leading && from != self.me() {
                        self.step_down(bal);
                    }
                    self.promised = bal;
                    self.leader = Some(from);
                    self.accept_locally(inst, bal, cmd, out);
                } else {
                    out.send(
                        from,
                        Msg::AcceptNack {
                            promised: self.promised,
                        },
                    );
                }
            }
            Msg::Learn { inst, bal, cmd } => {
                self.on_learn_vote(from, inst, bal, cmd, out);
            }
            Msg::Heartbeat { bal } => {
                if bal >= self.promised {
                    if self.leading && from != self.me() {
                        self.step_down(bal);
                    }
                    self.promised = bal;
                    self.leader = Some(from);
                }
            }
            Msg::Truncated { floor } => {
                // We reached below a peer's truncation floor: we are
                // behind an agreed truncation. Fast-forward; the engine's
                // gap-backlog trigger fetches a snapshot for the gap.
                self.apply_truncate(floor);
                if self.electing.is_some() {
                    // The election was anchored below the floor; abandon
                    // it and let the tick restart from the new watermark.
                    self.electing = None;
                } else if self.leading {
                    // Orphaned proposals were re-queued; re-advocate them
                    // in fresh instances above the floor.
                    for cmd in std::mem::take(&mut self.queue) {
                        self.propose(cmd, out);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, timer: Timer, now: Nanos, out: &mut Outbox<Msg>) {
        if timer != Timer::Tick {
            return;
        }
        if self.leading {
            let bal = self.promised;
            for peer in self.cfg.others() {
                out.send(peer, Msg::Heartbeat { bal });
            }
        } else {
            // Demand-driven suspicion (§7.6): forwarded commands that the
            // leader has not decided within the timeout mean the leader is
            // too slow, even if heartbeats still trickle in.
            let stalled = self
                .forwarded
                .values()
                .any(|&(_, t)| now.saturating_sub(t) > self.timing.suspect_after);
            if stalled {
                let reclaimed: Vec<Command> =
                    self.forwarded.values().map(|(c, _)| c.clone()).collect();
                self.forwarded.clear();
                self.queue.extend(reclaimed);
                if self.electing.is_none() {
                    self.start_election(out);
                }
            } else if !self.queue.is_empty() {
                if self.leader_suspected(now) {
                    if self.electing.is_none() {
                        self.start_election(out);
                    }
                } else if let Some(leader) = self.leader {
                    // Re-forward queued commands to the (new) leader.
                    for cmd in std::mem::take(&mut self.queue) {
                        if self.decided_ids.contains_key(&cmd.id()) {
                            continue;
                        }
                        self.forwarded.insert(cmd.id(), (cmd.clone(), now));
                        out.send(leader, Msg::Forward { cmd });
                    }
                }
            }
        }
        out.set_timer(Timer::Tick, self.timing.tick);
    }

    fn on_client_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        now: Nanos,
        out: &mut Outbox<Msg>,
    ) {
        let cmd = Command::new(client, req_id, op);
        self.my_clients.insert(cmd.id());
        if self.leading {
            self.propose(cmd, out);
        } else if !self.leader_suspected(now) {
            if let Some(leader) = self.leader {
                self.forwarded.insert(cmd.id(), (cmd.clone(), now));
                out.send(leader, Msg::Forward { cmd });
                return;
            }
            self.queue.push_back(cmd);
        } else {
            // "After receiving the clients' request, the non-leader node
            // tries to become leader" (§7.6, for 1Paxos; Multi-Paxos
            // behaves identically here).
            self.queue.push_back(cmd);
            if self.electing.is_none() {
                self.start_election(out);
            }
        }
    }

    fn is_leader(&self) -> bool {
        self.leading
    }

    fn leader_hint(&self) -> Option<NodeId> {
        self.leader
    }

    fn truncate(&mut self, watermark: Instance) {
        self.apply_truncate(watermark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testnet::TestNet;

    fn net(n: u16) -> TestNet<MultiPaxosNode> {
        TestNet::new(n, |m, me| {
            MultiPaxosNode::new(ClusterConfig::new(m.to_vec(), me))
        })
    }

    #[test]
    fn steady_state_commit() {
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 1);
        for n in 0..3 {
            assert_eq!(net.commits(NodeId(n)).len(), 1);
        }
        net.assert_consistent();
    }

    #[test]
    fn message_count_per_commit_matches_paper() {
        // §7.2/§4.3: 2 accepts + 3 acceptors × 2 learn broadcasts = 8
        // inter-replica messages per commit on three nodes.
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.delivered(), 8);
    }

    #[test]
    fn progresses_with_one_slow_node() {
        let mut net = net(3);
        net.block(NodeId(2));
        for req in 1..=5 {
            net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
        }
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 5);
        net.unblock(NodeId(2));
        net.run_to_quiescence();
        assert_eq!(net.commits(NodeId(2)).len(), 5);
        net.assert_consistent();
    }

    #[test]
    fn pipelines_concurrent_instances() {
        let mut net = net(3);
        for req in 1..=10 {
            net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
        }
        // All accepts are already in flight before any learn returns.
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 10);
        assert_eq!(net.node(NodeId(0)).watermark(), 10);
        net.assert_consistent();
    }

    #[test]
    fn leader_failover_elects_new_leader_and_preserves_commits() {
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        // Leader becomes slow.
        net.block(NodeId(0));
        // Client re-targets n1; n1 suspects after the timeout and elects
        // itself.
        net.advance(Timing::default().suspect_after + 1);
        net.client_request(NodeId(1), NodeId(9), 2, Op::Noop);
        net.advance_and_settle(Timing::default().tick, 4);
        assert!(net.node(NodeId(1)).is_leader());
        assert_eq!(net.replies().len(), 2);
        // The slow core comes back; it learns the new state.
        net.unblock(NodeId(0));
        net.advance_and_settle(Timing::default().tick, 4);
        assert!(!net.node(NodeId(0)).is_leader());
        assert_eq!(net.commits(NodeId(0)).len(), 2);
        net.assert_consistent();
    }

    #[test]
    fn new_leader_recovers_uncommitted_proposals() {
        let mut net = net(3);
        // The leader's accept reaches n1, but every other protocol message
        // of this instance is delayed indefinitely (slow leader): the
        // command is accepted at n1 yet chosen nowhere.
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        assert!(net.deliver_one(NodeId(0), NodeId(1))); // Accept → n1
        assert!(net.drop_one(NodeId(0), NodeId(1))); // n0's Learn → n1
        assert!(net.drop_one(NodeId(0), NodeId(2))); // Accept → n2
        assert!(net.drop_one(NodeId(0), NodeId(2))); // n0's Learn → n2
        assert!(net.drop_one(NodeId(1), NodeId(2))); // n1's Learn → n2
        assert!(net.drop_one(NodeId(1), NodeId(0))); // n1's Learn → n0
        net.block(NodeId(0));
        assert!(net.commits(NodeId(1)).is_empty());
        // n1 suspects the leader and takes over; phase 1 must surface the
        // accepted-but-unchosen proposal, which n1 re-proposes before its
        // own command (Paxos safety).
        net.advance(Timing::default().suspect_after + 1);
        net.client_request(NodeId(1), NodeId(9), 2, Op::Noop);
        net.advance_and_settle(Timing::default().tick, 6);
        net.assert_consistent();
        let commits = net.commits(NodeId(1));
        let inst_of = |req: u64| {
            commits
                .iter()
                .find(|(_, c)| c.req_id == req && c.client == NodeId(9))
                .map(|(&i, _)| i)
        };
        let (i1, i2) = (inst_of(1).unwrap(), inst_of(2).unwrap());
        assert!(i1 < i2, "recovered proposal must keep its earlier slot");
    }

    #[test]
    fn returning_old_leader_steps_down_on_nack() {
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        net.block(NodeId(0));
        net.advance(Timing::default().suspect_after + 1);
        net.client_request(NodeId(1), NodeId(9), 2, Op::Noop);
        net.advance_and_settle(Timing::default().tick, 4);
        assert!(net.node(NodeId(1)).is_leader());
        // Old leader wakes and tries to propose with its stale ballot.
        net.unblock(NodeId(0));
        net.client_request(NodeId(0), NodeId(9), 3, Op::Noop);
        net.advance_and_settle(Timing::default().tick, 6);
        assert!(!net.node(NodeId(0)).is_leader());
        net.assert_consistent();
        // Request 3 eventually commits via the new leader (re-forwarded).
        assert!(net
            .commits(NodeId(1))
            .values()
            .any(|c| c.req_id == 3 && c.client == NodeId(9)));
    }

    #[test]
    fn five_node_cluster_survives_two_slow() {
        let mut net = net(5);
        net.block(NodeId(3));
        net.block(NodeId(4));
        for req in 1..=3 {
            net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
        }
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 3);
        net.assert_consistent();
    }

    #[test]
    fn forward_to_leader_from_follower() {
        let mut net = net(3);
        net.client_request(NodeId(2), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 1);
        assert_eq!(net.replies()[0].from, NodeId(2));
        net.assert_consistent();
    }
}
