//! 2PC in its *agreement* form, as used by Barrelfish and as the blocking
//! baseline of the paper (§2.2).
//!
//! "In the first phase, the coordinator (the leader) sends a `prepare`
//! message to the replicas. Each replica locks its local copy of data and
//! responds with an `ack` message if it is not already locked by another
//! coordinator. The coordinator starts the second phase by broadcasting a
//! `commit` message to the replicas, but only if it receives an ack from
//! all of them. [...] each replica executes the command of the commit
//! message and releases its lock, which is followed by a `commit ack`
//! message back to the coordinator. Otherwise, the coordinator broadcasts
//! a `rollback` message" (§2.2).
//!
//! The protocol is **blocking**: a round completes only with responses from
//! *all* replicas, so a single slow core stalls every update — the
//! behaviour measured in §2.2 and reproduced by the `sec2_2` experiment.

use std::collections::{BTreeSet, VecDeque};

use crate::config::ClusterConfig;
use crate::outbox::{Outbox, Timer};
use crate::protocol::Protocol;
use crate::types::{Command, Instance, Nanos, NodeId, Op};

/// Wire messages of the 2PC agreement protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// A non-coordinator replica forwards a client command to the
    /// coordinator.
    Forward {
        /// The advocated command.
        cmd: Command,
    },
    /// Phase 1: coordinator asks replicas to lock their copy for `round`.
    Prepare {
        /// Round number; doubles as the commit's instance number.
        round: Instance,
        /// The command being agreed on.
        cmd: Command,
    },
    /// Phase 1 response: the replica locked its copy.
    Ack {
        /// Round being acknowledged.
        round: Instance,
    },
    /// Phase 1 response: the replica's copy is locked by another round.
    Nack {
        /// Round being refused.
        round: Instance,
    },
    /// Phase 2: apply the command and release the lock.
    Commit {
        /// Round to commit.
        round: Instance,
        /// The command to execute.
        cmd: Command,
    },
    /// Phase 2 response.
    CommitAck {
        /// Round whose commit was executed.
        round: Instance,
    },
    /// Abort the round; release the lock without executing.
    Rollback {
        /// Round to abort.
        round: Instance,
    },
}

#[derive(Debug)]
enum Phase {
    /// Waiting for `Ack` from every other replica.
    Preparing { acks: BTreeSet<NodeId> },
    /// Waiting for `CommitAck` from every other replica.
    Committing { acks: BTreeSet<NodeId> },
}

#[derive(Debug)]
struct ActiveRound {
    round: Instance,
    cmd: Command,
    phase: Phase,
    nacked: bool,
}

/// One 2PC participant; the configured initial leader acts as the (fixed)
/// coordinator, matching the paper's deployment where Core 0 coordinates.
///
/// # Examples
///
/// ```
/// use onepaxos::testnet::TestNet;
/// use onepaxos::twopc::TwoPcNode;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |m, me| TwoPcNode::new(ClusterConfig::new(m.to_vec(), me)));
/// net.client_request(NodeId(0), NodeId(7), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.commits(NodeId(2)).len(), 1);
/// net.assert_consistent();
/// ```
#[derive(Debug)]
pub struct TwoPcNode {
    cfg: ClusterConfig,
    coordinator: NodeId,
    /// Commands waiting for the coordinator's next round.
    pending: VecDeque<Command>,
    active: Option<ActiveRound>,
    next_round: Instance,
    /// Replica-side lock: the `(coordinator, round)` currently holding our
    /// copy.
    locked_by: Option<(NodeId, Instance)>,
    /// Ticks to wait before starting a round after an abort. Contending
    /// coordinators back off proportionally to their node id (deterministic
    /// priority), guaranteeing progress between contenders. Unused in the
    /// paper's single-coordinator deployments.
    backoff_ticks: u32,
    tick_period: Nanos,
}

impl TwoPcNode {
    /// Default maintenance tick period (100 µs).
    pub const DEFAULT_TICK: Nanos = 100_000;

    /// Creates a participant for `cfg`; `cfg.initial_leader()` coordinates.
    pub fn new(cfg: ClusterConfig) -> Self {
        let coordinator = cfg.initial_leader();
        TwoPcNode {
            cfg,
            coordinator,
            pending: VecDeque::new(),
            active: None,
            next_round: 0,
            locked_by: None,
            backoff_ticks: 0,
            tick_period: Self::DEFAULT_TICK,
        }
    }

    /// The fixed coordinator.
    pub fn coordinator(&self) -> NodeId {
        self.coordinator
    }

    /// Whether the local replica copy is currently locked (i.e. we are in
    /// the gap between the two phases of a round).
    pub fn is_locked(&self) -> bool {
        self.locked_by.is_some()
    }

    /// Number of commands queued at the coordinator.
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    fn me(&self) -> NodeId {
        self.cfg.me()
    }

    fn is_coordinator(&self) -> bool {
        self.me() == self.coordinator
    }

    /// Starts the next round if idle and work is queued.
    fn try_start_round(&mut self, out: &mut Outbox<Msg>) {
        if !self.is_coordinator() || self.active.is_some() || self.backoff_ticks > 0 {
            return;
        }
        // The coordinator's own copy must also be lockable.
        if self.locked_by.is_some() {
            return;
        }
        let Some(cmd) = self.pending.pop_front() else {
            return;
        };
        let round = self.next_round;
        self.next_round += 1;
        // Lock the local copy (the coordinator is itself a replica).
        self.locked_by = Some((self.me(), round));
        self.active = Some(ActiveRound {
            round,
            cmd: cmd.clone(),
            phase: Phase::Preparing {
                acks: BTreeSet::new(),
            },
            nacked: false,
        });
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Prepare {
                    round,
                    cmd: cmd.clone(),
                },
            );
        }
        self.maybe_finish_phase1(out);
    }

    fn maybe_finish_phase1(&mut self, out: &mut Outbox<Msg>) {
        let needed = self.cfg.len() - 1;
        let Some(active) = &mut self.active else {
            return;
        };
        let Phase::Preparing { acks } = &active.phase else {
            return;
        };
        if acks.len() < needed {
            return;
        }
        // All replicas locked: broadcast commit, execute locally.
        let round = active.round;
        let cmd = active.cmd.clone();
        active.phase = Phase::Committing {
            acks: BTreeSet::new(),
        };
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Commit {
                    round,
                    cmd: cmd.clone(),
                },
            );
        }
        out.commit(round, cmd);
        self.locked_by = None;
        self.maybe_finish_phase2(out);
    }

    fn maybe_finish_phase2(&mut self, out: &mut Outbox<Msg>) {
        let needed = self.cfg.len() - 1;
        let Some(active) = &self.active else {
            return;
        };
        let Phase::Committing { acks } = &active.phase else {
            return;
        };
        if acks.len() < needed {
            return;
        }
        let round = active.round;
        let (client, req_id) = active.cmd.id();
        self.active = None;
        out.reply(client, req_id, round);
        self.try_start_round(out);
    }

    fn abort_round(&mut self, out: &mut Outbox<Msg>) {
        let Some(active) = self.active.take() else {
            return;
        };
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Rollback {
                    round: active.round,
                },
            );
        }
        if self.locked_by == Some((self.me(), active.round)) {
            self.locked_by = None;
        }
        self.backoff_ticks = self.me().index() as u32 + 1;
        // Re-advocate the command in a later round.
        self.pending.push_front(active.cmd);
    }
}

impl Protocol for TwoPcNode {
    type Msg = Msg;

    fn node_id(&self) -> NodeId {
        self.cfg.me()
    }

    fn on_start(&mut self, _now: Nanos, out: &mut Outbox<Msg>) {
        out.set_timer(Timer::Tick, self.tick_period);
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, _now: Nanos, out: &mut Outbox<Msg>) {
        match msg {
            Msg::Forward { cmd } => {
                if self.is_coordinator() {
                    self.pending.push_back(cmd);
                    self.try_start_round(out);
                }
                // A non-coordinator silently drops a misdirected forward;
                // the client's retry logic re-targets.
            }
            Msg::Prepare { round, cmd } => {
                if self.locked_by.is_some() {
                    out.send(from, Msg::Nack { round });
                } else {
                    self.locked_by = Some((from, round));
                    let _ = cmd; // executed on Commit
                    out.send(from, Msg::Ack { round });
                }
            }
            Msg::Ack { round } => {
                if let Some(active) = &mut self.active {
                    if active.round == round {
                        if let Phase::Preparing { acks } = &mut active.phase {
                            acks.insert(from);
                        }
                        self.maybe_finish_phase1(out);
                    }
                }
            }
            Msg::Nack { round } => {
                let should_abort = self
                    .active
                    .as_mut()
                    .filter(|a| a.round == round && matches!(a.phase, Phase::Preparing { .. }))
                    .map(|a| {
                        a.nacked = true;
                        true
                    })
                    .unwrap_or(false);
                if should_abort {
                    self.abort_round(out);
                }
            }
            Msg::Commit { round, cmd } => {
                if self.locked_by == Some((from, round)) {
                    self.locked_by = None;
                }
                out.commit(round, cmd);
                out.send(from, Msg::CommitAck { round });
                // Lock released: a co-coordinator with queued work must
                // resume *now*, not on its next maintenance tick — lock
                // windows are reused per transaction fragment, so a
                // tick-long stall per release compounds. `try_start_round`
                // re-checks every guard (active round, backoff, lock,
                // queue) and pops at most one command, so a command
                // arriving exactly at lock release is dispatched exactly
                // once even though the tick path will also call this.
                self.try_start_round(out);
            }
            Msg::CommitAck { round } => {
                if let Some(active) = &mut self.active {
                    if active.round == round {
                        if let Phase::Committing { acks } = &mut active.phase {
                            acks.insert(from);
                        }
                        self.maybe_finish_phase2(out);
                    }
                }
            }
            Msg::Rollback { round } => {
                if self.locked_by == Some((from, round)) {
                    self.locked_by = None;
                }
                // Same dispatch-at-release as `Msg::Commit`.
                self.try_start_round(out);
            }
        }
    }

    fn on_timer(&mut self, timer: Timer, _now: Nanos, out: &mut Outbox<Msg>) {
        if timer == Timer::Tick {
            // Blocking protocol: no round timeouts by design. The tick only
            // restarts queued work after an aborted round.
            if self.backoff_ticks > 0 {
                self.backoff_ticks -= 1;
            }
            self.try_start_round(out);
            out.set_timer(Timer::Tick, self.tick_period);
        }
    }

    fn on_client_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        _now: Nanos,
        out: &mut Outbox<Msg>,
    ) {
        let cmd = Command::new(client, req_id, op);
        if self.is_coordinator() {
            self.pending.push_back(cmd);
            self.try_start_round(out);
        } else {
            out.send(self.coordinator, Msg::Forward { cmd });
        }
    }

    fn is_leader(&self) -> bool {
        self.is_coordinator()
    }

    fn leader_hint(&self) -> Option<NodeId> {
        Some(self.coordinator)
    }

    /// 2PC serves reads from the local copy (Fig 10's 2PC-Joint).
    fn supports_local_reads(&self) -> bool {
        true
    }

    /// 2PC can answer reads from the local copy whenever it is not locked
    /// "in the gap between two phases of 2PC" (§7.5). This is what gives
    /// 2PC-Joint its read-heavy advantage in Fig 10.
    fn can_read_locally(&self, _key: u64) -> bool {
        self.locked_by.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testnet::TestNet;

    fn net(n: u16) -> TestNet<TwoPcNode> {
        TestNet::new(n, |m, me| {
            TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
        })
    }

    #[test]
    fn single_command_commits_everywhere() {
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        for n in 0..3 {
            assert_eq!(net.commits(NodeId(n)).len(), 1, "node {n}");
        }
        assert_eq!(net.replies().len(), 1);
        assert_eq!(net.replies()[0].client, NodeId(9));
        net.assert_consistent();
    }

    #[test]
    fn commands_commit_in_submission_order() {
        let mut net = net(3);
        for req in 1..=5 {
            net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
        }
        net.run_to_quiescence();
        let commits = net.commits(NodeId(1));
        assert_eq!(commits.len(), 5);
        for (i, (&inst, cmd)) in commits.iter().enumerate() {
            assert_eq!(inst, i as Instance);
            assert_eq!(cmd.req_id, i as u64 + 1);
        }
        net.assert_consistent();
    }

    #[test]
    fn forward_reaches_coordinator() {
        let mut net = net(3);
        net.client_request(NodeId(2), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 1);
        // Reply comes from the coordinator.
        assert_eq!(net.replies()[0].from, NodeId(0));
    }

    #[test]
    fn message_count_per_commit_matches_paper() {
        // §7.2: 2PC transmits prepare×2 + ack×2 + commit×2 + commit-ack×2
        // = 8 inter-replica messages per commit with 3 replicas (the paper
        // counts 10 including the client request and reply, which the
        // testnet does not model as messages).
        let mut net = net(3);
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert_eq!(net.delivered(), 8);
    }

    #[test]
    fn blocked_replica_blocks_all_updates() {
        // §2.2: "no requests can commit after any replica including the
        // leader is unavailable".
        let mut net = net(3);
        net.block(NodeId(2));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        net.run_to_quiescence();
        assert!(net.replies().is_empty());
        assert_eq!(net.commits(NodeId(0)).len(), 0);
        // The slow core responds again: the update completes.
        net.unblock(NodeId(2));
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 1);
        net.assert_consistent();
    }

    #[test]
    fn local_reads_allowed_only_outside_lock_window() {
        let mut net = net(3);
        assert!(net.node(NodeId(1)).can_read_locally(1));
        // Put replica 1 inside the lock window: deliver Prepare but block
        // the ack from completing the round.
        net.block(NodeId(0));
        net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
        // Coordinator is blocked, so unblock to emit prepares, then block
        // again before acks return.
        net.unblock(NodeId(0));
        // Deliver just the prepare to replica 1.
        assert!(net.deliver_one(NodeId(0), NodeId(1)));
        assert!(net.node(NodeId(1)).is_locked());
        assert!(!net.node(NodeId(1)).can_read_locally(1));
        net.run_to_quiescence();
        assert!(!net.node(NodeId(1)).is_locked());
        assert!(net.node(NodeId(1)).can_read_locally(1));
    }

    #[test]
    fn contending_coordinator_gets_nack_and_rolls_back() {
        // Two nodes believe they are coordinators (forced by hand) — the
        // replica's lock makes one of them rollback and retry. The rogue
        // gets a disjoint round space: multi-coordinator 2PC provides
        // mutual exclusion via locks, not a shared log.
        let mut net = net(3);
        net.node_mut(NodeId(1)).coordinator = NodeId(1); // rogue coordinator
        net.node_mut(NodeId(1)).next_round = 1000;
        net.client_request(NodeId(0), NodeId(8), 1, Op::Noop);
        net.client_request(NodeId(1), NodeId(9), 1, Op::Noop);
        // Deliver n0's prepare to n2 first, then n1's prepare to n2 → nack.
        assert!(net.deliver_one(NodeId(0), NodeId(2)));
        assert!(net.deliver_one(NodeId(1), NodeId(2)));
        net.run_to_quiescence();
        // The rogue's round aborted; its command is re-queued.
        assert!(net.node(NodeId(1)).queue_len() >= 1 || !net.replies().is_empty());
        // Ticks let the rogue retry once the lock is free.
        net.advance_and_settle(TwoPcNode::DEFAULT_TICK, 4);
        let committed: usize = (0..3).map(|n| net.commits(NodeId(n)).len()).sum();
        assert!(committed > 0);
        net.assert_consistent();
    }

    #[test]
    fn command_arriving_at_lock_release_is_dispatched_exactly_once_and_immediately() {
        // The latent `is_locked()`/queue interaction surfaced by
        // lock-window reuse: n1 believes it coordinates, but its copy is
        // locked by n0's in-flight round, so its queued command cannot
        // start. When n0's Commit releases the lock, the command must
        // start *immediately* (no tick) and be dispatched exactly once —
        // the release handler and the tick path both call
        // `try_start_round`, and only the pop-once queue discipline
        // keeps that single dispatch.
        let mut net = net(3);
        net.node_mut(NodeId(1)).coordinator = NodeId(1); // co-coordinator
        net.node_mut(NodeId(1)).next_round = 1000;
        // n0 starts a round; deliver its Prepare to n1 so n1 is locked.
        net.client_request(NodeId(0), NodeId(8), 1, Op::Noop);
        assert!(net.deliver_one(NodeId(0), NodeId(1)));
        assert!(net.node(NodeId(1)).is_locked());
        // A command reaches the locked co-coordinator: it must queue.
        net.client_request(NodeId(1), NodeId(9), 1, Op::Noop);
        assert_eq!(net.node(NodeId(1)).queue_len(), 1);
        // Finishing n0's round delivers Commit to n1 — the lock releases
        // and the queued command starts in the same delivery, with NO
        // time advance (the old behaviour stalled it until the tick).
        net.run_to_quiescence();
        assert!(!net.node(NodeId(1)).is_locked());
        assert_eq!(net.node(NodeId(1)).queue_len(), 0, "dispatched at release");
        assert_eq!(net.replies().len(), 2, "both commands answered");
        // Exactly once: n9's command occupies exactly one slot in every
        // replica's log (a double dispatch would commit it twice, in
        // n1's disjoint round space).
        for n in 0..3u16 {
            let hits = net
                .commits(NodeId(n))
                .values()
                .filter(|c| c.client == NodeId(9))
                .count();
            assert_eq!(hits, 1, "node {n} committed the command {hits} times");
        }
        // Ticks afterwards must not re-dispatch anything either.
        net.advance_and_settle(TwoPcNode::DEFAULT_TICK, 4);
        for n in 0..3u16 {
            let hits = net
                .commits(NodeId(n))
                .values()
                .filter(|c| c.client == NodeId(9))
                .count();
            assert_eq!(hits, 1, "tick re-dispatched at node {n}");
        }
        net.assert_consistent();
    }

    #[test]
    fn queue_drains_across_rounds() {
        let mut net = net(5);
        for req in 1..=20 {
            net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
        }
        net.run_to_quiescence();
        assert_eq!(net.replies().len(), 20);
        assert_eq!(net.commits(NodeId(4)).len(), 20);
        net.assert_consistent();
    }
}
