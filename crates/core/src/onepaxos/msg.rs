//! Wire messages of 1Paxos and of its embedded PaxosUtility.

use crate::types::{Ballot, Command, Instance, NodeId};

/// An entry of the PaxosUtility log (§5.2–§5.3).
///
/// "PaxosUtility contains entries for changing the active acceptor, i.e.
/// `AcceptorChange`, and entries for changing the leader, i.e.
/// `LeaderChange`" (Appendix B).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UtilityEntry {
    /// A proposer announces itself as the Global leader, naming the active
    /// acceptor it intends to use (Step 2 of Fig 5).
    LeaderChange {
        /// The new Global leader (also the entry's author).
        leader: NodeId,
        /// The active acceptor the new leader will work with.
        acceptor: NodeId,
    },
    /// The Global leader replaces the active acceptor (Step 2 of Fig 4),
    /// attaching its uncommitted proposed values so the next leader
    /// proposes the same values (§5.2).
    AcceptorChange {
        /// The entry's author (must be the Global leader, Lemma 1).
        by: NodeId,
        /// The new active acceptor.
        acceptor: NodeId,
        /// Proposed-but-uncommitted values carried across the switch.
        uncommitted: Vec<(Instance, Command)>,
    },
}

impl UtilityEntry {
    /// The node that authored this entry.
    pub fn author(&self) -> NodeId {
        match *self {
            UtilityEntry::LeaderChange { leader, .. } => leader,
            UtilityEntry::AcceptorChange { by, .. } => by,
        }
    }

    /// The active acceptor this entry establishes.
    pub fn acceptor(&self) -> NodeId {
        match *self {
            UtilityEntry::LeaderChange { acceptor, .. } => acceptor,
            UtilityEntry::AcceptorChange { acceptor, .. } => acceptor,
        }
    }
}

/// Messages of the embedded PaxosUtility (a basic-Paxos log over
/// [`UtilityEntry`] values, run on the same nodes as 1Paxos).
#[derive(Clone, Debug, PartialEq)]
pub enum UtilityMsg {
    /// Phase-1 request for utility instance `uinst`.
    Prepare {
        /// Utility log slot.
        uinst: Instance,
        /// Proposal ballot.
        bal: Ballot,
    },
    /// Phase-1 response.
    Promise {
        /// Utility log slot.
        uinst: Instance,
        /// The promised ballot.
        bal: Ballot,
        /// Previously accepted entry for the slot, if any.
        accepted: Option<(Ballot, UtilityEntry)>,
    },
    /// Phase-1 refusal with the higher promised ballot.
    PrepareNack {
        /// Utility log slot.
        uinst: Instance,
        /// The acceptor's promised ballot.
        promised: Ballot,
    },
    /// Phase-2 request.
    Accept {
        /// Utility log slot.
        uinst: Instance,
        /// Proposal ballot.
        bal: Ballot,
        /// Proposed entry.
        entry: UtilityEntry,
    },
    /// Phase-2 refusal with the higher promised ballot.
    AcceptNack {
        /// Utility log slot.
        uinst: Instance,
        /// The acceptor's promised ballot.
        promised: Ballot,
    },
    /// Acceptor → learners broadcast of an acceptance.
    Learn {
        /// Utility log slot.
        uinst: Instance,
        /// Ballot under which the entry was accepted.
        bal: Ballot,
        /// Accepted entry.
        entry: UtilityEntry,
    },
    /// Majority inquiry of the utility log ("the active acceptor Id can be
    /// obtained by inquiring a majority of the nodes", §5.3).
    Query {
        /// Correlates responses with the inquiry.
        qid: u64,
        /// Length of the inquirer's chosen log (responders send newer
        /// entries only).
        have: Instance,
    },
    /// Response to [`UtilityMsg::Query`] carrying the chosen suffix.
    QueryResp {
        /// The inquiry this responds to.
        qid: u64,
        /// Chosen entries at or above the requested index.
        entries: Vec<(Instance, UtilityEntry)>,
    },
}

/// What an [`Msg::Abandon`] refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbandonRe {
    /// Refusal of a `prepare request`.
    Prepare,
    /// Refusal of an `accept request`.
    Accept,
}

/// Wire messages of 1Paxos (Appendix A, Fig 12).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A non-leader node forwards a client command to the leader.
    Forward {
        /// The advocated command.
        cmd: Command,
    },
    /// `prepare request(pn, YouMustBeFresh)`: a proposer asks the active
    /// acceptor to adopt it as leader.
    PrepareReq {
        /// The proposer's proposal number.
        pn: Ballot,
        /// "The proposer expects to be the first proposer that contacts
        /// the acceptor" (Appendix A). Sent only by the leader that just
        /// installed a fresh backup acceptor.
        expect_fresh: bool,
    },
    /// `prepare response(pn, ap)`: the acceptor adopts the proposer and
    /// echoes all accepted proposals.
    PrepareResp {
        /// The adopted proposal number.
        pn: Ballot,
        /// The acceptor's accepted-proposal map `ap`.
        accepted: Vec<(Instance, Ballot, Command)>,
    },
    /// `accept request(in, pn, v)`.
    AcceptReq {
        /// Target instance.
        inst: Instance,
        /// The leader's proposal number (must equal the acceptor's `hpn`).
        pn: Ballot,
        /// Proposed command.
        cmd: Command,
    },
    /// `abandon(hpn)`: the acceptor refuses; carries its state so the
    /// proposer can diagnose supersession (`hpn` above its own `pn`),
    /// acceptor reset (`hpn` below), or a freshness mismatch.
    Abandon {
        /// The acceptor's highest promised proposal number.
        hpn: Ballot,
        /// The acceptor's `IamFresh` flag.
        fresh: bool,
        /// Which request was refused.
        re: AbandonRe,
    },
    /// `learn(in, v)`: the active acceptor broadcasts an acceptance to all
    /// learners. With a single active acceptor one learn message decides
    /// the instance at the receiving learner.
    Learn {
        /// Decided instance.
        inst: Instance,
        /// Proposal number under which it was accepted.
        pn: Ballot,
        /// The decided command.
        cmd: Command,
    },
    /// The acceptor refuses an `accept request` below its truncation
    /// floor: every instance below `floor` was agreed-truncated
    /// ([`crate::types::Op::Truncate`]), so its value is already decided,
    /// applied and covered by a snapshot. A proposer receiving this is
    /// stale; it fast-forwards its own bookkeeping to `floor` and relies
    /// on snapshot install to close the resulting apply gap.
    Truncated {
        /// The acceptor's truncation floor.
        floor: Instance,
    },
    /// An embedded PaxosUtility message.
    Utility(UtilityMsg),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_author_and_acceptor() {
        let lc = UtilityEntry::LeaderChange {
            leader: NodeId(2),
            acceptor: NodeId(1),
        };
        assert_eq!(lc.author(), NodeId(2));
        assert_eq!(lc.acceptor(), NodeId(1));
        let ac = UtilityEntry::AcceptorChange {
            by: NodeId(0),
            acceptor: NodeId(2),
            uncommitted: vec![(3, Command::noop(NodeId(9), 1))],
        };
        assert_eq!(ac.author(), NodeId(0));
        assert_eq!(ac.acceptor(), NodeId(2));
    }

    #[test]
    fn entry_equality_distinguishes_payload() {
        let a = UtilityEntry::LeaderChange {
            leader: NodeId(1),
            acceptor: NodeId(2),
        };
        let b = UtilityEntry::LeaderChange {
            leader: NodeId(1),
            acceptor: NodeId(0),
        };
        assert_ne!(a, b);
        assert_eq!(a.clone(), a);
    }
}
