//! The PaxosUtility: a basic-Paxos-replicated log of role-change entries,
//! embedded in every 1Paxos node.
//!
//! "We assume that the consensus over the new active acceptor is achieved
//! by a separate basic implementation of Paxos, which hereafter is called
//! PaxosUtility. [...] running PaxosUtility does not require any extra
//! nodes; it runs on the same nodes as 1Paxos" (§5.2).
//!
//! The node-facing operation is a **compare-and-swap at the log tail**: a
//! proposer offers an entry for the first free slot it knows of; the
//! operation *succeeds* iff its own entry is the one chosen there. This is
//! exactly the mechanism behind Lemma 1 (only the Global leader can insert
//! an `AcceptorChange`): the leader checks it is still the last
//! `LeaderChange`, remembers the tail index, and proposes at that index —
//! "the failure of this phase implies that another node has inserted
//! something in the meanwhile" (Appendix B).

use std::collections::{BTreeMap, BTreeSet};

use crate::basic_paxos::{InstanceAcceptor, QuorumLearner};
use crate::config::ClusterConfig;
use crate::outbox::Outbox;
use crate::types::{Ballot, Instance, NodeId};

use super::msg::{Msg, UtilityEntry, UtilityMsg};

/// Events surfaced to the owning 1Paxos node.
#[derive(Clone, Debug, PartialEq)]
pub enum UtilityEvent {
    /// A new entry was decided and appended to the local chosen log.
    Chosen {
        /// The slot it occupies.
        uinst: Instance,
        /// The decided entry.
        entry: UtilityEntry,
    },
    /// Our compare-and-swap completed: `success` iff our entry was chosen
    /// in the slot we targeted.
    CasFinished {
        /// The targeted slot.
        uinst: Instance,
        /// Whether our entry won the slot.
        success: bool,
    },
    /// A majority inquiry completed; the local log now reflects at least
    /// everything a majority had chosen when queried.
    QueryDone {
        /// The inquiry id.
        qid: u64,
    },
}

#[derive(Debug)]
struct Cas {
    uinst: Instance,
    bal: Ballot,
    /// The entry we want chosen.
    want: UtilityEntry,
    /// The entry we are driving in phase 2 (ours, or a prior accepted one
    /// that Paxos obliges us to finish).
    driving: Option<UtilityEntry>,
    promises: BTreeSet<NodeId>,
    prior: Option<(Ballot, UtilityEntry)>,
    phase2: bool,
    stalled_ticks: u32,
}

#[derive(Debug)]
struct Query {
    qid: u64,
    replied: BTreeSet<NodeId>,
    done: bool,
}

/// The utility log state machine owned by one node.
#[derive(Debug)]
pub(crate) struct PaxosUtility {
    cfg: ClusterConfig,
    round: u32,
    acceptors: BTreeMap<Instance, InstanceAcceptor<UtilityEntry>>,
    learner: QuorumLearner<UtilityEntry>,
    /// Contiguous chosen prefix.
    log: Vec<UtilityEntry>,
    /// Chosen out of order, waiting for the gap to fill.
    chosen_ahead: BTreeMap<Instance, UtilityEntry>,
    cas: Option<Cas>,
    query: Option<Query>,
    next_qid: u64,
}

impl PaxosUtility {
    /// Creates the utility pre-seeded with `seed` entries that every node
    /// agrees were chosen before startup. The paper's initialization: "the
    /// node with the smallest Id can insert two entries for `LeaderChange`
    /// and `AcceptorChange` to announce itself as the Global leader and
    /// its active acceptor" (Appendix B) — seeding deterministically gives
    /// all nodes that initial knowledge.
    pub fn with_seed(cfg: ClusterConfig, seed: Vec<UtilityEntry>) -> Self {
        PaxosUtility {
            cfg,
            round: 0,
            acceptors: BTreeMap::new(),
            learner: QuorumLearner::new(),
            log: seed,
            chosen_ahead: BTreeMap::new(),
            cas: None,
            query: None,
            next_qid: 0,
        }
    }

    /// The locally known chosen log.
    pub fn log(&self) -> &[UtilityEntry] {
        &self.log
    }

    /// The Global leader per the local log: the author of the last
    /// `LeaderChange` (Appendix B definition).
    pub fn global_leader(&self) -> Option<NodeId> {
        self.log.iter().rev().find_map(|e| match *e {
            UtilityEntry::LeaderChange { leader, .. } => Some(leader),
            UtilityEntry::AcceptorChange { .. } => None,
        })
    }

    /// The Global acceptor per the local log: the acceptor named by the
    /// last entry (both entry kinds name one).
    pub fn global_acceptor(&self) -> Option<NodeId> {
        self.log.last().map(|e| e.acceptor())
    }

    /// Whether a CAS or query of ours is in flight.
    pub fn busy(&self) -> bool {
        self.cas.is_some() || self.query.is_some()
    }

    /// Starts a compare-and-swap of `entry` at the local log tail.
    /// At most one CAS may be in flight.
    ///
    /// # Panics
    ///
    /// Panics if a CAS is already in flight.
    pub fn start_cas(&mut self, entry: UtilityEntry, out: &mut Outbox<Msg>) -> Instance {
        assert!(self.cas.is_none(), "one utility CAS at a time");
        let uinst = self.log.len() as Instance;
        self.round += 1;
        let bal = Ballot::new(self.round, self.cfg.me());
        self.cas = Some(Cas {
            uinst,
            bal,
            want: entry,
            driving: None,
            promises: BTreeSet::new(),
            prior: None,
            phase2: false,
            stalled_ticks: 0,
        });
        for peer in self.cfg.others() {
            out.send(peer, Msg::Utility(UtilityMsg::Prepare { uinst, bal }));
        }
        let mut events = Vec::new();
        self.local_prepare(uinst, bal, out, &mut events);
        debug_assert!(events.is_empty(), "CAS cannot finish from one promise");
        uinst
    }

    /// Starts a majority inquiry; completion is reported via
    /// [`UtilityEvent::QueryDone`].
    ///
    /// # Panics
    ///
    /// Panics if a query is already in flight.
    pub fn start_query(&mut self, out: &mut Outbox<Msg>) -> u64 {
        assert!(self.query.is_none(), "one utility query at a time");
        let qid = self.next_qid;
        self.next_qid += 1;
        self.query = Some(Query {
            qid,
            replied: BTreeSet::new(),
            done: false,
        });
        let have = self.log.len() as Instance;
        for peer in self.cfg.others() {
            out.send(peer, Msg::Utility(UtilityMsg::Query { qid, have }));
        }
        qid
    }

    /// Periodic maintenance: retries a stalled CAS with a higher ballot.
    /// The retry threshold grows with the node id, giving contending
    /// proposers a deterministic priority order (duelling avoidance).
    pub fn tick(&mut self, out: &mut Outbox<Msg>) {
        let me = self.cfg.me();
        let Some(cas) = self.cas.as_mut() else {
            return;
        };
        cas.stalled_ticks += 1;
        let threshold = 2 + me.index() as u32;
        if cas.stalled_ticks < threshold {
            return;
        }
        // Restart phase 1 for the same slot with a bigger ballot.
        self.round += 1;
        let bal = Ballot::new(self.round, me);
        let uinst = cas.uinst;
        cas.bal = bal;
        cas.promises.clear();
        cas.prior = None;
        cas.driving = None;
        cas.phase2 = false;
        cas.stalled_ticks = 0;
        for peer in self.cfg.others() {
            out.send(peer, Msg::Utility(UtilityMsg::Prepare { uinst, bal }));
        }
        let mut events = Vec::new();
        self.local_prepare(uinst, bal, out, &mut events);
        debug_assert!(events.is_empty());
    }

    /// Handles a utility message, returning events for the owning node.
    pub fn handle(
        &mut self,
        from: NodeId,
        msg: UtilityMsg,
        out: &mut Outbox<Msg>,
    ) -> Vec<UtilityEvent> {
        let mut events = Vec::new();
        match msg {
            UtilityMsg::Prepare { uinst, bal } => {
                let acc = self
                    .acceptors
                    .entry(uinst)
                    .or_insert_with(InstanceAcceptor::new);
                match acc.on_prepare(bal) {
                    Ok(accepted) => out.send(
                        from,
                        Msg::Utility(UtilityMsg::Promise {
                            uinst,
                            bal,
                            accepted,
                        }),
                    ),
                    Err(promised) => out.send(
                        from,
                        Msg::Utility(UtilityMsg::PrepareNack { uinst, promised }),
                    ),
                }
            }
            UtilityMsg::Promise {
                uinst,
                bal,
                accepted,
            } => {
                self.on_promise(from, uinst, bal, accepted, out, &mut events);
            }
            UtilityMsg::PrepareNack { uinst, promised } => {
                // A higher ballot exists: let the tick retry with a bigger
                // one; remember the round so the next ballot clears it.
                if self
                    .cas
                    .as_ref()
                    .is_some_and(|c| c.uinst == uinst && promised > c.bal)
                {
                    self.round = self.round.max(promised.round);
                }
            }
            UtilityMsg::Accept { uinst, bal, entry } => {
                let acc = self
                    .acceptors
                    .entry(uinst)
                    .or_insert_with(InstanceAcceptor::new);
                match acc.on_accept(bal, entry.clone()) {
                    Ok(()) => {
                        for peer in self.cfg.others() {
                            out.send(
                                peer,
                                Msg::Utility(UtilityMsg::Learn {
                                    uinst,
                                    bal,
                                    entry: entry.clone(),
                                }),
                            );
                        }
                        self.on_learn_vote(self.cfg.me(), uinst, bal, entry, &mut events);
                    }
                    Err(promised) => out.send(
                        from,
                        Msg::Utility(UtilityMsg::AcceptNack { uinst, promised }),
                    ),
                }
            }
            UtilityMsg::AcceptNack { uinst, promised } => {
                if self
                    .cas
                    .as_ref()
                    .is_some_and(|c| c.uinst == uinst && promised > c.bal)
                {
                    self.round = self.round.max(promised.round);
                }
            }
            UtilityMsg::Learn { uinst, bal, entry } => {
                self.on_learn_vote(from, uinst, bal, entry, &mut events);
            }
            UtilityMsg::Query { qid, have } => {
                let entries: Vec<(Instance, UtilityEntry)> = self
                    .log
                    .iter()
                    .enumerate()
                    .skip(have as usize)
                    .map(|(i, e)| (i as Instance, e.clone()))
                    .collect();
                out.send(from, Msg::Utility(UtilityMsg::QueryResp { qid, entries }));
            }
            UtilityMsg::QueryResp { qid, entries } => {
                for (uinst, entry) in entries {
                    self.absorb_chosen(uinst, entry, &mut events);
                }
                let majority = self.cfg.majority();
                if let Some(q) = self.query.as_mut() {
                    if q.qid == qid && !q.done {
                        q.replied.insert(from);
                        // The local node counts toward the majority.
                        if q.replied.len() + 1 >= majority {
                            q.done = true;
                            events.push(UtilityEvent::QueryDone { qid });
                            self.query = None;
                        }
                    }
                }
            }
        }
        events
    }

    fn local_prepare(
        &mut self,
        uinst: Instance,
        bal: Ballot,
        out: &mut Outbox<Msg>,
        events: &mut Vec<UtilityEvent>,
    ) {
        let acc = self
            .acceptors
            .entry(uinst)
            .or_insert_with(InstanceAcceptor::new);
        if let Ok(accepted) = acc.on_prepare(bal) {
            self.on_promise(self.cfg.me(), uinst, bal, accepted, out, events);
        }
    }

    fn on_promise(
        &mut self,
        from: NodeId,
        uinst: Instance,
        bal: Ballot,
        accepted: Option<(Ballot, UtilityEntry)>,
        out: &mut Outbox<Msg>,
        events: &mut Vec<UtilityEvent>,
    ) {
        let majority = self.cfg.majority();
        let Some(cas) = self.cas.as_mut() else {
            return;
        };
        if cas.uinst != uinst || cas.bal != bal || cas.phase2 {
            return;
        }
        cas.stalled_ticks = 0;
        cas.promises.insert(from);
        if let Some((abal, entry)) = accepted {
            if cas.prior.as_ref().is_none_or(|(pb, _)| abal > *pb) {
                cas.prior = Some((abal, entry));
            }
        }
        if cas.promises.len() < majority {
            return;
        }
        cas.phase2 = true;
        // Paxos obliges us to finish a prior proposal if one exists.
        let driving = cas
            .prior
            .as_ref()
            .map(|(_, e)| e.clone())
            .unwrap_or_else(|| cas.want.clone());
        cas.driving = Some(driving.clone());
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Utility(UtilityMsg::Accept {
                    uinst,
                    bal,
                    entry: driving.clone(),
                }),
            );
        }
        // Local accept + self learn vote.
        let acc = self
            .acceptors
            .entry(uinst)
            .or_insert_with(InstanceAcceptor::new);
        if acc.on_accept(bal, driving.clone()).is_ok() {
            for peer in self.cfg.others() {
                out.send(
                    peer,
                    Msg::Utility(UtilityMsg::Learn {
                        uinst,
                        bal,
                        entry: driving.clone(),
                    }),
                );
            }
            self.on_learn_vote(self.cfg.me(), uinst, bal, driving, events);
        }
    }

    fn on_learn_vote(
        &mut self,
        from: NodeId,
        uinst: Instance,
        bal: Ballot,
        entry: UtilityEntry,
        events: &mut Vec<UtilityEvent>,
    ) {
        let quorum = self.cfg.majority();
        if let Some(chosen) = self.learner.on_learn(uinst, from, bal, entry, quorum) {
            self.absorb_chosen(uinst, chosen, events);
        }
    }

    /// Integrates a decided entry into the chosen log, emitting `Chosen`
    /// events in log order and resolving our CAS when its slot decides.
    fn absorb_chosen(
        &mut self,
        uinst: Instance,
        entry: UtilityEntry,
        events: &mut Vec<UtilityEvent>,
    ) {
        let len = self.log.len() as Instance;
        if uinst < len {
            debug_assert_eq!(
                self.log[uinst as usize], entry,
                "utility consistency violation at slot {uinst}"
            );
            return;
        }
        self.chosen_ahead.entry(uinst).or_insert(entry);
        while let Some(e) = self.chosen_ahead.remove(&(self.log.len() as Instance)) {
            let slot = self.log.len() as Instance;
            self.log.push(e.clone());
            events.push(UtilityEvent::Chosen {
                uinst: slot,
                entry: e.clone(),
            });
            if let Some(cas) = self.cas.as_ref() {
                if cas.uinst == slot {
                    let success = e == cas.want;
                    events.push(UtilityEvent::CasFinished {
                        uinst: slot,
                        success,
                    });
                    self.cas = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outbox::Action;
    use crate::types::NodeId;
    use std::collections::VecDeque;

    fn cfg(n: u16, me: u16) -> ClusterConfig {
        ClusterConfig::new((0..n).map(NodeId).collect(), NodeId(me))
    }

    fn seed() -> Vec<UtilityEntry> {
        vec![
            UtilityEntry::LeaderChange {
                leader: NodeId(0),
                acceptor: NodeId(1),
            },
            UtilityEntry::AcceptorChange {
                by: NodeId(0),
                acceptor: NodeId(1),
                uncommitted: Vec::new(),
            },
        ]
    }

    /// Minimal in-test bus wiring three PaxosUtility instances together.
    struct Bus {
        utils: Vec<PaxosUtility>,
        queue: VecDeque<(NodeId, NodeId, UtilityMsg)>,
        events: Vec<(NodeId, UtilityEvent)>,
    }

    impl Bus {
        fn new(n: u16) -> Self {
            Bus {
                utils: (0..n)
                    .map(|me| PaxosUtility::with_seed(cfg(n, me), seed()))
                    .collect(),
                queue: VecDeque::new(),
                events: Vec::new(),
            }
        }

        fn absorb(&mut self, from: NodeId, out: &mut Outbox<Msg>) {
            for a in out.take() {
                if let Action::Send {
                    to,
                    msg: Msg::Utility(m),
                } = a
                {
                    self.queue.push_back((from, to, m));
                }
            }
        }

        fn run(&mut self, skip: &[NodeId]) {
            while let Some(pos) = self.queue.iter().position(|(_, to, _)| !skip.contains(to)) {
                let (from, to, m) = self.queue.remove(pos).unwrap();
                let mut out = Outbox::new();
                let evs = self.utils[to.index()].handle(from, m, &mut out);
                for e in evs {
                    self.events.push((to, e));
                }
                self.absorb(to, &mut out);
            }
        }
    }

    #[test]
    fn seeded_views() {
        let u = PaxosUtility::with_seed(cfg(3, 0), seed());
        assert_eq!(u.global_leader(), Some(NodeId(0)));
        assert_eq!(u.global_acceptor(), Some(NodeId(1)));
        assert_eq!(u.log().len(), 2);
    }

    #[test]
    fn global_acceptor_follows_last_entry() {
        let mut entries = seed();
        entries.push(UtilityEntry::AcceptorChange {
            by: NodeId(0),
            acceptor: NodeId(2),
            uncommitted: Vec::new(),
        });
        let u = PaxosUtility::with_seed(cfg(3, 0), entries.clone());
        assert_eq!(u.global_acceptor(), Some(NodeId(2)));
        assert_eq!(u.global_leader(), Some(NodeId(0)));
        entries.push(UtilityEntry::LeaderChange {
            leader: NodeId(2),
            acceptor: NodeId(1),
        });
        let u = PaxosUtility::with_seed(cfg(3, 0), entries);
        assert_eq!(u.global_leader(), Some(NodeId(2)));
        assert_eq!(u.global_acceptor(), Some(NodeId(1)));
    }

    #[test]
    fn cas_succeeds_when_uncontended() {
        let mut bus = Bus::new(3);
        let mut out = Outbox::new();
        let want = UtilityEntry::LeaderChange {
            leader: NodeId(2),
            acceptor: NodeId(1),
        };
        let uinst = bus.utils[2].start_cas(want.clone(), &mut out);
        assert_eq!(uinst, 2);
        bus.absorb(NodeId(2), &mut out);
        bus.run(&[]);
        assert!(bus.events.iter().any(|(n, e)| *n == NodeId(2)
            && *e
                == UtilityEvent::CasFinished {
                    uinst: 2,
                    success: true
                }));
        // Every node appended the entry.
        for u in &bus.utils {
            assert_eq!(u.log().len(), 3);
            assert_eq!(u.global_leader(), Some(NodeId(2)));
        }
    }

    #[test]
    fn cas_of_loser_fails_and_log_converges() {
        let mut bus = Bus::new(3);
        let w1 = UtilityEntry::LeaderChange {
            leader: NodeId(1),
            acceptor: NodeId(2),
        };
        let w2 = UtilityEntry::LeaderChange {
            leader: NodeId(2),
            acceptor: NodeId(1),
        };
        let mut o1 = Outbox::new();
        let mut o2 = Outbox::new();
        bus.utils[1].start_cas(w1.clone(), &mut o1);
        bus.utils[2].start_cas(w2.clone(), &mut o2);
        bus.absorb(NodeId(1), &mut o1);
        bus.absorb(NodeId(2), &mut o2);
        bus.run(&[]);
        // Ties may stall both CASes (duelling); ticks with deterministic
        // priority resolve them.
        for _ in 0..12 {
            for i in 0..3 {
                let mut out = Outbox::new();
                bus.utils[i].tick(&mut out);
                bus.absorb(NodeId(i as u16), &mut out);
            }
            bus.run(&[]);
            let done = |n: u16| {
                bus.events.iter().any(|(id, e)| {
                    *id == NodeId(n) && matches!(e, UtilityEvent::CasFinished { .. })
                })
            };
            if done(1) && done(2) {
                break;
            }
        }
        let successes: Vec<bool> = bus
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                UtilityEvent::CasFinished { uinst: 2, success } => Some(*success),
                _ => None,
            })
            .collect();
        // Exactly one winner for slot 2.
        assert_eq!(successes.iter().filter(|s| **s).count(), 1);
        // All logs agree on slot 2.
        let winner = bus.utils[0].log()[2].clone();
        for u in &bus.utils {
            assert!(u.log().len() >= 3);
            assert_eq!(u.log()[2], winner);
        }
    }

    #[test]
    fn cas_progresses_with_one_node_down() {
        let mut bus = Bus::new(3);
        let mut out = Outbox::new();
        let want = UtilityEntry::AcceptorChange {
            by: NodeId(0),
            acceptor: NodeId(2),
            uncommitted: Vec::new(),
        };
        bus.utils[0].start_cas(want, &mut out);
        bus.absorb(NodeId(0), &mut out);
        bus.run(&[NodeId(1)]); // node 1 is slow
        assert!(bus.events.iter().any(|(n, e)| *n == NodeId(0)
            && matches!(e, UtilityEvent::CasFinished { success: true, .. })));
    }

    #[test]
    fn query_fills_stale_log() {
        let mut bus = Bus::new(3);
        // Node 2 misses a decided entry: simulate by CASing while 2 is
        // down.
        let mut out = Outbox::new();
        let want = UtilityEntry::LeaderChange {
            leader: NodeId(0),
            acceptor: NodeId(1),
        };
        bus.utils[0].start_cas(want, &mut out);
        bus.absorb(NodeId(0), &mut out);
        bus.run(&[NodeId(2)]);
        // Drop node 2's backlog (it was "slow"; those messages are still
        // queued — keep them undelivered by clearing).
        bus.queue.retain(|(_, to, _)| *to != NodeId(2));
        assert_eq!(bus.utils[2].log().len(), 2);
        // Node 2 inquires a majority.
        let mut out = Outbox::new();
        let qid = bus.utils[2].start_query(&mut out);
        bus.absorb(NodeId(2), &mut out);
        bus.run(&[]);
        assert!(bus
            .events
            .iter()
            .any(|(n, e)| *n == NodeId(2) && *e == UtilityEvent::QueryDone { qid }));
        assert_eq!(bus.utils[2].log().len(), 3);
    }

    #[test]
    #[should_panic(expected = "one utility CAS at a time")]
    fn double_cas_panics() {
        let mut u = PaxosUtility::with_seed(cfg(3, 0), seed());
        let mut out = Outbox::new();
        let e = UtilityEntry::LeaderChange {
            leader: NodeId(0),
            acceptor: NodeId(1),
        };
        u.start_cas(e.clone(), &mut out);
        u.start_cas(e, &mut out);
    }
}
