//! Unit tests for 1Paxos: failure-free fast path, acceptor switch, leader
//! switch, double failure, silent acceptor reboot, value pinning.

use super::*;
use crate::testnet::TestNet;

fn net(n: u16) -> TestNet<OnePaxosNode> {
    let mut net = TestNet::new(n, |m, me| {
        OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me))
    });
    // Let the initial leader get adopted by the initial acceptor.
    net.run_to_quiescence();
    net
}

const TICK: Nanos = 100_000;

fn timing() -> Timing {
    Timing::default()
}

#[test]
fn bootstrap_adopts_initial_leader() {
    let net = net(3);
    assert!(net.node(NodeId(0)).is_leader());
    assert!(!net.node(NodeId(1)).is_leader());
    assert_eq!(net.node(NodeId(0)).active_acceptor(), Some(NodeId(1)));
    // The acceptor is no longer fresh after adoption.
    assert!(!net.node(NodeId(1)).is_fresh_acceptor());
    // Backup acceptors stay fresh.
    assert!(net.node(NodeId(2)).is_fresh_acceptor());
}

#[test]
fn failure_free_commit_on_all_nodes() {
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Put { key: 1, value: 10 });
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 1);
    for n in 0..3 {
        assert_eq!(net.commits(NodeId(n)).len(), 1, "node {n}");
    }
    net.assert_consistent();
}

#[test]
fn fast_path_message_count_matches_fig3() {
    // Fig 3 / §4.3: with three nodes the fast path crossing node
    // boundaries is 1 accept request + 2 learns = 3 messages (the paper's
    // "factor of two" counts the client request and reply as well:
    // 5 vs Multi-Paxos's 10).
    let mut net = net(3);
    let before = net.delivered();
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    assert_eq!(net.delivered() - before, 3);
}

#[test]
fn pipelining_many_commands() {
    let mut net = net(3);
    for req in 1..=20 {
        net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
    }
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 20);
    assert_eq!(net.node(NodeId(0)).watermark(), 20);
    // Commands occupy consecutive instances in submission order.
    let commits = net.commits(NodeId(2));
    for (&inst, cmd) in commits {
        assert_eq!(cmd.req_id, inst + 1);
    }
    net.assert_consistent();
}

#[test]
fn forwarded_requests_reach_leader() {
    let mut net = net(3);
    net.client_request(NodeId(2), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 1);
    assert_eq!(net.replies()[0].from, NodeId(2));
    net.assert_consistent();
}

#[test]
fn progresses_while_backup_acceptor_is_slow() {
    // A slow *backup* (n2) must not affect the fast path at all — the
    // whole point of not replicating the acceptor role.
    let mut net = net(3);
    net.block(NodeId(2));
    for req in 1..=5 {
        net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
    }
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 5);
    net.unblock(NodeId(2));
    net.run_to_quiescence();
    assert_eq!(net.commits(NodeId(2)).len(), 5);
    net.assert_consistent();
}

#[test]
fn acceptor_failure_switches_to_backup() {
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    // The active acceptor n1 becomes slow.
    net.block(NodeId(1));
    net.client_request(NodeId(0), NodeId(9), 2, Op::Noop);
    net.run_to_quiescence(); // accept sits in n1's queue
    assert_eq!(net.replies().len(), 1);
    // Leader times out on the accept, switches to backup acceptor n2 via
    // PaxosUtility (majority n0+n2 suffices), re-prepares and re-proposes.
    net.advance_and_settle(timing().io_timeout + TICK, 6);
    assert_eq!(net.node(NodeId(0)).active_acceptor(), Some(NodeId(2)));
    assert!(net.node(NodeId(0)).is_leader());
    assert_eq!(net.replies().len(), 2);
    net.assert_consistent();
    // The slow acceptor returns; its stale learn for instance 1 must agree
    // with what was committed (value pinning via AcceptorChange).
    net.unblock(NodeId(1));
    net.advance_and_settle(TICK, 4);
    net.assert_consistent();
}

#[test]
fn acceptor_switch_pins_uncommitted_values() {
    let mut net = net(3);
    // Leader sends the accept for req 1, but the acceptor goes quiet
    // before anyone learns it.
    net.block(NodeId(1));
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    assert_eq!(net.replies().len(), 0);
    // Switch: AcceptorChange must carry (0, req1) as uncommitted, so the
    // re-proposal uses the same value for instance 0.
    net.advance_and_settle(timing().io_timeout + TICK, 6);
    assert_eq!(net.replies().len(), 1);
    let commits = net.commits(NodeId(0));
    assert_eq!(commits.get(&0).map(|c| c.req_id), Some(1));
    // n1 wakes: its queued accept was for the same pinned value; safe
    // either way because its pn is stale.
    net.unblock(NodeId(1));
    net.advance_and_settle(TICK, 4);
    net.assert_consistent();
}

#[test]
fn slow_leader_is_replaced_on_demand() {
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    net.block(NodeId(0));
    // The client re-targets n2 (n1 is the acceptor; either works).
    net.client_request(NodeId(2), NodeId(9), 2, Op::Noop);
    // n2 forwards to the (slow) leader; after suspect_after it takes over
    // via LeaderChange and gets adopted by the still-alive acceptor n1.
    net.advance_and_settle(timing().suspect_after + TICK, 8);
    assert!(net.node(NodeId(2)).is_leader());
    assert_eq!(net.replies().len(), 2);
    net.assert_consistent();
    // Old leader wakes up; it observes the LeaderChange and stays a
    // follower.
    net.unblock(NodeId(0));
    net.advance_and_settle(TICK, 6);
    assert!(!net.node(NodeId(0)).is_leader());
    assert_eq!(net.commits(NodeId(0)).len(), 2);
    net.assert_consistent();
}

#[test]
fn acceptor_node_does_not_take_over_leadership() {
    let mut net = net(3);
    net.block(NodeId(0));
    // A request lands on the active acceptor n1: it may not lead (§5.4
    // placement) and must wait rather than elect itself.
    net.client_request(NodeId(1), NodeId(9), 1, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 6);
    assert!(!net.node(NodeId(1)).is_leader());
    // The client's retry to n2 resolves the situation.
    net.client_request(NodeId(2), NodeId(9), 1, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 8);
    assert!(net.node(NodeId(2)).is_leader());
    assert!(!net.replies().is_empty());
    net.assert_consistent();
}

#[test]
fn leader_and_acceptor_both_slow_blocks_then_recovers() {
    // §5.4: "while both the leader and the active acceptor are not
    // responding, it is the liveness of the system that is affected, but
    // not its safety."
    let mut net = net(4); // N=4: two nodes remain, still a non-majority...
                          // actually 2 of 4 is not a majority, mirroring
                          // the 3-node argument: no progress.
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    net.block(NodeId(0)); // leader
    net.block(NodeId(1)); // active acceptor
    net.client_request(NodeId(2), NodeId(9), 2, Op::Noop);
    net.client_request(NodeId(3), NodeId(9), 3, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 10);
    // Takeover CAS may succeed (majority n2+n3+... none: 2 of 4 is not a
    // majority) — nothing can be decided; with the acceptor also down the
    // fast path is blocked too.
    assert_eq!(net.replies().len(), 1);
    net.assert_consistent();
    // One of the two returns: the acceptor. Takeover can now finish.
    net.unblock(NodeId(1));
    net.advance_and_settle(timing().suspect_after + TICK, 12);
    assert!(net.replies().len() >= 3, "got {}", net.replies().len());
    net.assert_consistent();
    net.unblock(NodeId(0));
    net.advance_and_settle(TICK, 6);
    net.assert_consistent();
}

#[test]
fn five_nodes_leader_and_acceptor_down_blocks_until_one_returns() {
    // With N=5, leader+acceptor down leaves a majority (3) alive, but
    // 1Paxos still cannot progress — the trade-off the paper states for
    // higher replication degrees. Safety holds; progress resumes when the
    // acceptor responds.
    let mut net = net(5);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    net.block(NodeId(0));
    net.block(NodeId(1));
    net.client_request(NodeId(3), NodeId(9), 2, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 10);
    // A LeaderChange may be chosen (majority alive), but adoption requires
    // the active acceptor: blocked.
    assert_eq!(net.replies().len(), 1);
    net.assert_consistent();
    net.unblock(NodeId(1));
    net.advance_and_settle(timing().suspect_after + TICK, 12);
    assert!(net.replies().len() >= 2);
    net.assert_consistent();
}

#[test]
fn rebooted_acceptor_is_switched_by_its_leader() {
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    // The active acceptor silently loses its state.
    let cfg = ClusterConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)], NodeId(1));
    net.reset_node(NodeId(1), || OnePaxosNode::new(cfg.clone()));
    assert!(net.node(NodeId(1)).is_fresh_acceptor());
    // The leader's next accept is abandoned with hpn = -∞ < pn: reboot
    // detected, acceptor switched.
    net.client_request(NodeId(0), NodeId(9), 2, Op::Noop);
    net.advance_and_settle(TICK, 10);
    assert_eq!(net.node(NodeId(0)).active_acceptor(), Some(NodeId(2)));
    assert_eq!(net.replies().len(), 2);
    net.assert_consistent();
}

#[test]
fn takeover_leader_cannot_adopt_fresh_acceptor() {
    // The freshness check: a takeover leader sends YouMustBeFresh=false;
    // a fresh acceptor must refuse (silent-reboot guard).
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    // Reboot the acceptor AND block the leader: the takeover node n2
    // cannot distinguish reboot from never-adopted, so it must block.
    let cfg = ClusterConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)], NodeId(1));
    net.reset_node(NodeId(1), || OnePaxosNode::new(cfg.clone()));
    net.block(NodeId(0));
    net.client_request(NodeId(2), NodeId(9), 2, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 10);
    assert!(!net.node(NodeId(2)).is_leader());
    assert!(net.node(NodeId(1)).freshness_blocks() > 0);
    assert_eq!(net.replies().len(), 1);
    net.assert_consistent();
    // The old leader returns — but the takeover's LeaderChange already
    // deposed it, so it relinquishes and cannot switch the rebooted
    // acceptor either. The freshness guard keeps the group SAFE but
    // unavailable: an acceptor reboot is outside the paper's slow-core
    // (state-preserving) fault model, and the check exists precisely to
    // block rather than risk re-proposing over lost acceptor state.
    net.unblock(NodeId(0));
    net.advance_and_settle(timing().suspect_after + TICK, 12);
    assert!(!net.node(NodeId(0)).is_leader());
    assert_eq!(net.replies().len(), 1, "must stay blocked, not unsafe");
    net.assert_consistent();
}

#[test]
fn reply_routing_via_forwarding_node() {
    let mut net = net(3);
    net.client_request(NodeId(2), NodeId(7), 1, Op::Put { key: 3, value: 33 });
    net.run_to_quiescence();
    let r = net.replies();
    assert_eq!(r.len(), 1);
    assert_eq!(r[0].client, NodeId(7));
    assert_eq!(r[0].from, NodeId(2));
}

#[test]
fn utility_log_grows_only_on_role_changes() {
    let mut net = net(3);
    for req in 1..=10 {
        net.client_request(NodeId(0), NodeId(9), req, Op::Noop);
    }
    net.run_to_quiescence();
    // Failure-free: the seeded two entries remain the whole log.
    assert_eq!(net.node(NodeId(0)).utility_log().len(), 2);
    // One acceptor switch adds exactly one entry.
    net.block(NodeId(1));
    net.client_request(NodeId(0), NodeId(9), 11, Op::Noop);
    net.advance_and_settle(timing().io_timeout + TICK, 8);
    assert_eq!(net.node(NodeId(0)).utility_log().len(), 4); // +AcceptorChange +LeaderChange(re-adopt)
    net.assert_consistent();
}

#[test]
fn consecutive_acceptor_failures() {
    // Unlike Cheap Paxos, recovery of *either* previously slow node keeps
    // the system live (§8): each switch only needs a majority for the
    // PaxosUtility CAS plus the new acceptor.
    let mut net = net(4);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    // First acceptor n1 dies → switch to n2.
    net.block(NodeId(1));
    net.client_request(NodeId(0), NodeId(9), 2, Op::Noop);
    net.advance_and_settle(timing().io_timeout + TICK, 8);
    assert_eq!(net.node(NodeId(0)).active_acceptor(), Some(NodeId(2)));
    // n1 recovers; later the second acceptor n2 dies → switch to n3.
    net.unblock(NodeId(1));
    net.advance_and_settle(TICK, 4);
    net.block(NodeId(2));
    net.client_request(NodeId(0), NodeId(9), 3, Op::Noop);
    net.advance_and_settle(timing().io_timeout + TICK, 8);
    assert_eq!(net.node(NodeId(0)).active_acceptor(), Some(NodeId(3)));
    assert_eq!(net.replies().len(), 3);
    net.assert_consistent();
    net.unblock(NodeId(2));
    net.advance_and_settle(TICK, 6);
    net.assert_consistent();
}

#[test]
fn client_retry_is_deduplicated_by_reply_routing() {
    let mut net = net(3);
    // The same request lands on two nodes (client timed out and retried).
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.client_request(NodeId(2), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    // Both nodes reply (each owned a copy); the command may commit twice
    // in different instances — the RSM layer deduplicates application.
    assert!(!net.replies().is_empty());
    net.assert_consistent();
    let all: Vec<_> = net.commits(NodeId(0)).values().collect();
    assert!(all.iter().all(|c| c.id() == (NodeId(9), 1)));
}

#[test]
fn relaxed_reads_flag_controls_local_reads() {
    let cfg = ClusterConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)], NodeId(0));
    let strict = OnePaxosNode::new(cfg.clone());
    assert!(!strict.supports_local_reads());
    assert!(!strict.can_read_locally(1));
    let relaxed = OnePaxosNode::new(cfg).with_relaxed_reads();
    assert!(relaxed.supports_local_reads());
    assert!(relaxed.can_read_locally(1));
}

#[test]
fn concurrent_takeovers_resolve_to_one_leader() {
    // Two proposers suspect the leader at the same time; the PaxosUtility
    // CAS serializes the LeaderChange entries and exactly one of them
    // ends up leading.
    let mut net = net(4);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    net.block(NodeId(0));
    net.client_request(NodeId(2), NodeId(9), 2, Op::Noop);
    net.client_request(NodeId(3), NodeId(9), 3, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 12);
    let leaders: Vec<u16> = (1..4u16)
        .filter(|&n| net.node(NodeId(n)).is_leader())
        .collect();
    assert_eq!(leaders.len(), 1, "exactly one leader, got {leaders:?}");
    assert_eq!(net.replies().len(), 3, "all requests committed");
    net.assert_consistent();
    net.unblock(NodeId(0));
    net.advance_and_settle(TICK, 6);
    net.assert_consistent();
}

#[test]
fn leader_switch_then_acceptor_switch_chain() {
    // The full §5 gauntlet: first the leader fails (LeaderChange), then
    // the acceptor fails under the new leader (AcceptorChange).
    let mut net = net(4);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    // Leader n0 fails → n2 or n3 takes over with acceptor n1.
    net.block(NodeId(0));
    net.client_request(NodeId(2), NodeId(9), 2, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 10);
    assert!(net.node(NodeId(2)).is_leader());
    assert_eq!(net.replies().len(), 2);
    // The old leader recovers as a follower (keeping a majority around),
    // then the acceptor n1 fails under leader n2 → switch to n3.
    net.unblock(NodeId(0));
    net.advance_and_settle(TICK, 4);
    net.block(NodeId(1));
    net.client_request(NodeId(2), NodeId(9), 3, Op::Noop);
    net.advance_and_settle(timing().io_timeout + TICK, 12);
    assert_eq!(net.replies().len(), 3, "chain of switches completed");
    assert_eq!(net.node(NodeId(2)).active_acceptor(), Some(NodeId(3)));
    net.assert_consistent();
    net.unblock(NodeId(1));
    net.advance_and_settle(TICK, 8);
    net.assert_consistent();
}

#[test]
fn utility_log_converges_across_all_nodes_after_churn() {
    let mut net = net(3);
    net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
    net.run_to_quiescence();
    net.block(NodeId(0));
    net.client_request(NodeId(2), NodeId(9), 2, Op::Noop);
    net.advance_and_settle(timing().suspect_after + TICK, 8);
    net.unblock(NodeId(0));
    net.advance_and_settle(TICK, 8);
    let logs: Vec<usize> = (0..3)
        .map(|n| net.node(NodeId(n as u16)).utility_log().len())
        .collect();
    assert_eq!(logs[0], logs[1]);
    assert_eq!(logs[1], logs[2]);
    // And the logs agree entry by entry.
    let l0 = net.node(NodeId(0)).utility_log().to_vec();
    for n in 1..3u16 {
        assert_eq!(net.node(NodeId(n)).utility_log(), &l0[..]);
    }
}
