//! **1Paxos** — the paper's contribution (§4, §5, Appendix A): a
//! non-blocking consensus protocol for many-cores built around a *single
//! active acceptor*.
//!
//! "A key insight underlying 1Paxos is the observation that the role of
//! acceptor in Paxos-based protocols [...] can be played by a single node.
//! [...] An alternative approach is to rely on backup acceptors, and
//! replace the failed (or suspected to be failed) acceptor with a new
//! fresh one. The backup acceptors do not participate in the normal
//! execution of the protocol and do not, hence, increase the message
//! complexity of the protocol" (§4.3).
//!
//! The fast path per command is: client → leader (`Forward`/direct),
//! leader → acceptor (`accept request`), acceptor → all learners
//! (`learn`) — 3 inter-replica messages on three nodes versus
//! Multi-Paxos's 8, "reducing the number of produced messages by a factor
//! of two" once client traffic is counted (Fig 3).
//!
//! Role changes go through the embedded PaxosUtility: the
//! leader replaces a failed acceptor with `AcceptorChange` (carrying its
//! uncommitted proposals, §5.2), any proposer takes over a failed leader
//! with `LeaderChange` (§5.3), and the leader/acceptor placement on
//! distinct nodes makes the double-failure case exactly as rare as losing
//! a majority with three nodes (§5.4).
//!
//! # Fault model
//!
//! Faults are *slow cores*: state survives and nodes eventually respond
//! (§1 footnote 3). The `IamFresh`/`YouMustBeFresh` handshake additionally
//! detects an acceptor that lost its state (a "silent reboot"); such an
//! acceptor is switched out by its last adopted leader (Appendix A
//! discussion). If the leader and the active acceptor are unresponsive
//! *simultaneously*, 1Paxos blocks — by design — until one of them
//! responds again (§5.4); safety is never affected.

mod msg;
mod utility;

pub use msg::{AbandonRe, Msg, UtilityEntry, UtilityMsg};
pub use utility::UtilityEvent;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::ClusterConfig;
use crate::outbox::{Outbox, Timer};
use crate::protocol::Protocol;
use crate::types::{Ballot, Command, Instance, Nanos, NodeId, Op};

use utility::PaxosUtility;

/// Timing knobs for 1Paxos.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Maintenance tick period.
    pub tick: Nanos,
    /// Outstanding prepare/accept age after which the active acceptor is
    /// suspected.
    pub io_timeout: Nanos,
    /// Forwarded-command age after which the leader is suspected and a
    /// takeover is attempted ("after receiving the clients' request, the
    /// non-leader node tries to become leader", §7.6).
    pub suspect_after: Nanos,
}

impl Default for Timing {
    /// 100 µs tick, 1 ms IO timeout, 2 ms leader suspicion.
    fn default() -> Self {
        Timing {
            tick: 100_000,
            io_timeout: 1_000_000,
            suspect_after: 2_000_000,
        }
    }
}

/// Continuation state for the at-most-one in-flight PaxosUtility
/// operation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum PendingOp {
    None,
    /// `propose()` (takeover): majority inquiry before the LeaderChange.
    TakeoverQuery {
        qid: u64,
    },
    /// `propose()` (takeover): LeaderChange CAS in flight.
    TakeoverCas {
        uinst: Instance,
    },
    /// `AcceptorFailure`: majority inquiry verifying we are still the
    /// Global leader (Fig 4 Step 1).
    SwitchQuery {
        qid: u64,
    },
    /// `AcceptorFailure`: AcceptorChange CAS in flight (Fig 4 Step 2).
    SwitchCas {
        uinst: Instance,
        new_acceptor: NodeId,
    },
}

/// A 1Paxos node: proposer + (backup or active) acceptor + learner, plus
/// the embedded PaxosUtility participant.
///
/// # Examples
///
/// ```
/// use onepaxos::onepaxos::OnePaxosNode;
/// use onepaxos::testnet::TestNet;
/// use onepaxos::{ClusterConfig, NodeId, Op};
///
/// let mut net = TestNet::new(3, |m, me| {
///     OnePaxosNode::new(ClusterConfig::new(m.to_vec(), me))
/// });
/// net.run_to_quiescence(); // initial leader adoption
/// net.client_request(NodeId(0), NodeId(9), 1, Op::Noop);
/// net.run_to_quiescence();
/// assert_eq!(net.replies().len(), 1);
/// net.assert_consistent();
/// ```
#[derive(Debug)]
pub struct OnePaxosNode {
    cfg: ClusterConfig,
    timing: Timing,
    // --- proposer state (Appendix A, Fig 12) ---
    /// `IamLeader`: adopted by the active acceptor.
    i_am_leader: bool,
    /// `pn`: our current proposal number.
    pn: Ballot,
    /// Highest round observed anywhere, for `new_pn()`.
    max_round: u32,
    /// `Aa`: the active acceptor per our view of the utility log.
    active_acceptor: Option<NodeId>,
    /// `proposed[]`: value pinning across role switches (`getAny`,
    /// `registerProposals`). Entries are dropped once learned.
    proposed: BTreeMap<Instance, Command>,
    next_instance: Instance,
    /// Commands waiting for us to become (or be confirmed) leader.
    queue: VecDeque<Command>,
    /// Commands forwarded to the leader, with forwarding time (leader
    /// suspicion is demand-driven, §7.6).
    forwarded: BTreeMap<(NodeId, u64), (Command, Nanos)>,
    /// Outstanding accept requests (instance → send time).
    inflight: BTreeMap<Instance, Nanos>,
    /// Outstanding prepare request (pn, send time).
    prepare_state: Option<(Ballot, Nanos)>,
    pending_op: PendingOp,
    /// Set while we installed a fresh backup acceptor that has not adopted
    /// us yet: our prepares to it carry `YouMustBeFresh = true`.
    expect_fresh_for: Option<NodeId>,
    // --- acceptor state ---
    /// `hpn`: highest promised proposal number (`Ballot::ZERO` = -∞).
    hpn: Ballot,
    /// `IamFresh`: no leader has adopted this acceptor yet.
    i_am_fresh: bool,
    /// `ap`: accepted proposals.
    ap: BTreeMap<Instance, (Ballot, Command)>,
    // --- learner state ---
    learned: BTreeMap<Instance, Command>,
    /// Command id → instance for every decided command, so a stale
    /// forward or retry of an already-decided command is answered (or
    /// dropped) instead of re-proposed.
    decided_ids: BTreeMap<(NodeId, u64), Instance>,
    watermark: Instance,
    /// Agreed-truncation floor: every instance below it is decided and
    /// covered by the replica's snapshot, and all per-instance state below
    /// it has been dropped. The acceptor refuses accepts below the floor
    /// (replying [`Msg::Truncated`]) so a lagging leader can never re-fill
    /// truncated slots with no-ops and diverge from the applied prefix.
    trunc_floor: Instance,
    my_clients: BTreeSet<(NodeId, u64)>,
    // --- embedded PaxosUtility ---
    utility: PaxosUtility,
    noop_seq: u64,
    /// Count of prepares refused by freshness mismatch (blocked-by-design
    /// corner, for observability).
    freshness_blocks: u64,
    /// Serve reads from the local learner state without ordering them
    /// through consensus ("for more relaxed read consistency guarantees,
    /// local reads may be performed even with non-blocking protocols",
    /// §1). Off by default: reads are linearized.
    relaxed_reads: bool,
}

impl OnePaxosNode {
    /// Creates a node with [`Timing::default`].
    ///
    /// # Panics
    ///
    /// Panics if the cluster has fewer than 2 members (1Paxos places the
    /// leader and active acceptor on distinct nodes, §5.4).
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::with_timing(cfg, Timing::default())
    }

    /// Creates a node with explicit timing knobs.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has fewer than 2 members.
    pub fn with_timing(cfg: ClusterConfig, timing: Timing) -> Self {
        assert!(cfg.len() >= 2, "1Paxos needs at least 2 nodes");
        let leader = cfg.initial_leader();
        let acceptor = cfg.initial_acceptor();
        // Appendix B initialization: the utility log starts with the
        // initial leader's LeaderChange and AcceptorChange, known to all.
        let seed = vec![
            UtilityEntry::LeaderChange { leader, acceptor },
            UtilityEntry::AcceptorChange {
                by: leader,
                acceptor,
                uncommitted: Vec::new(),
            },
        ];
        let utility = PaxosUtility::with_seed(cfg.clone(), seed);
        let me = cfg.me();
        OnePaxosNode {
            timing,
            i_am_leader: false,
            pn: Ballot::ZERO,
            max_round: 0,
            active_acceptor: Some(acceptor),
            proposed: BTreeMap::new(),
            next_instance: 0,
            queue: VecDeque::new(),
            forwarded: BTreeMap::new(),
            inflight: BTreeMap::new(),
            prepare_state: None,
            pending_op: PendingOp::None,
            expect_fresh_for: (me == leader).then_some(acceptor),
            hpn: Ballot::ZERO,
            i_am_fresh: true,
            ap: BTreeMap::new(),
            learned: BTreeMap::new(),
            decided_ids: BTreeMap::new(),
            watermark: 0,
            trunc_floor: 0,
            my_clients: BTreeSet::new(),
            utility,
            noop_seq: 0,
            freshness_blocks: 0,
            relaxed_reads: false,
            cfg,
        }
    }

    /// Enables relaxed-consistency local reads: `Get`s are answered from
    /// the local replica without a consensus round (§1's remark). Writes
    /// remain linearized; reads may observe a stale-but-committed prefix.
    pub fn with_relaxed_reads(mut self) -> Self {
        self.relaxed_reads = true;
        self
    }

    // ------------------------------------------------------------------
    // Introspection (used by harnesses, benches and tests)
    // ------------------------------------------------------------------

    /// The active acceptor per this node's view.
    pub fn active_acceptor(&self) -> Option<NodeId> {
        self.active_acceptor
    }

    /// Whether this node's *acceptor role* has never been adopted.
    pub fn is_fresh_acceptor(&self) -> bool {
        self.i_am_fresh
    }

    /// Contiguous learned prefix (all instances below are decided).
    pub fn watermark(&self) -> Instance {
        self.watermark
    }

    /// The local view of the PaxosUtility log.
    pub fn utility_log(&self) -> &[UtilityEntry] {
        self.utility.log()
    }

    /// Number of prepares this node's acceptor refused due to a freshness
    /// mismatch.
    pub fn freshness_blocks(&self) -> u64 {
        self.freshness_blocks
    }

    /// The agreed-truncation floor (0 until the first [`Op::Truncate`]
    /// applies here).
    pub fn trunc_floor(&self) -> Instance {
        self.trunc_floor
    }

    /// Commands queued locally waiting for leadership or a leader.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + self.forwarded.len()
    }

    fn me(&self) -> NodeId {
        self.cfg.me()
    }

    // ------------------------------------------------------------------
    // Proposer side
    // ------------------------------------------------------------------

    /// `new_pn()`: a proposal number above everything we have seen.
    fn new_pn(&mut self) -> Ballot {
        self.max_round += 1;
        Ballot::new(self.max_round, self.me())
    }

    fn observe_round(&mut self, b: Ballot) {
        self.max_round = self.max_round.max(b.round);
    }

    /// Sends a `prepare request` to the active acceptor.
    fn send_prepare(&mut self, now: Nanos, out: &mut Outbox<Msg>) {
        let Some(acceptor) = self.active_acceptor else {
            return;
        };
        let pn = self.new_pn();
        self.pn = pn;
        let expect_fresh = self.expect_fresh_for == Some(acceptor);
        self.prepare_state = Some((pn, now));
        out.send(acceptor, Msg::PrepareReq { pn, expect_fresh });
    }

    /// Leader fast path: assign the next instance and send the accept.
    fn propose_cmd(&mut self, cmd: Command, now: Nanos, out: &mut Outbox<Msg>) {
        debug_assert!(self.i_am_leader);
        let inst = self.next_instance;
        self.next_instance += 1;
        self.proposed.insert(inst, cmd.clone());
        self.inflight.insert(inst, now);
        let pn = self.pn;
        let acceptor = self.active_acceptor.expect("leader has an acceptor");
        out.send(acceptor, Msg::AcceptReq { inst, pn, cmd });
    }

    fn drain_queue(&mut self, now: Nanos, out: &mut Outbox<Msg>) {
        while let Some(cmd) = self.queue.pop_front() {
            if self.decided_ids.contains_key(&cmd.id()) {
                continue;
            }
            self.propose_cmd(cmd, now, out);
        }
    }

    /// Routes a command: propose if leader, forward if a leader is known,
    /// otherwise queue and try to take over. Commands already decided are
    /// answered immediately (a client retry of a committed command).
    fn route(&mut self, cmd: Command, now: Nanos, out: &mut Outbox<Msg>) {
        if let Some(&inst) = self.decided_ids.get(&cmd.id()) {
            if self.my_clients.remove(&cmd.id()) {
                out.reply(cmd.client, cmd.req_id, inst);
            }
            return;
        }
        if self.i_am_leader {
            self.propose_cmd(cmd, now, out);
            return;
        }
        match self.utility.global_leader() {
            Some(l) if l != self.me() => {
                self.forwarded.insert(cmd.id(), (cmd.clone(), now));
                out.send(l, Msg::Forward { cmd });
            }
            _ => {
                self.queue.push_back(cmd);
                self.try_takeover(now, out);
            }
        }
    }

    /// `proc propose()`, non-leader path: inquire a majority, announce
    /// `LeaderChange`, then prepare at the active acceptor (Fig 5).
    fn try_takeover(&mut self, now: Nanos, out: &mut Outbox<Msg>) {
        if self.i_am_leader {
            self.drain_queue(now, out);
            return;
        }
        if self.pending_op != PendingOp::None || self.utility.busy() || self.prepare_state.is_some()
        {
            return; // one step at a time; the tick retries
        }
        // A node may not lead while being the active acceptor (§5.4
        // placement); some other node will take over instead.
        if self.utility.global_acceptor() == Some(self.me()) {
            return;
        }
        let qid = self.utility.start_query(out);
        self.pending_op = PendingOp::TakeoverQuery { qid };
    }

    /// `Upon AcceptorFailure` (Fig 12 lines 1–13).
    fn acceptor_failure(&mut self, now: Nanos, out: &mut Outbox<Msg>) {
        let _ = now;
        if self.pending_op != PendingOp::None || self.utility.busy() {
            return;
        }
        let qid = self.utility.start_query(out);
        self.pending_op = PendingOp::SwitchQuery { qid };
    }

    /// Lines 4–6: "somebody thought I am dead" — relinquish leadership.
    fn relinquish(&mut self) {
        self.i_am_leader = false;
        self.prepare_state = None;
        self.inflight.clear();
        // Re-advocate unlearned proposals: the next leader registers the
        // acceptor's `ap`, but values whose accepts never arrived anywhere
        // would otherwise be lost. The RSM layer deduplicates.
        let orphans: Vec<Command> = self.proposed.values().cloned().collect();
        self.queue.extend(orphans);
    }

    /// `registerProposals(proposals)` (Fig 13): pin values so `getAny`
    /// re-proposes them for their instances.
    fn register_proposals<'a>(
        &mut self,
        proposals: impl IntoIterator<Item = &'a (Instance, Command)>,
    ) {
        for (inst, cmd) in proposals {
            if !self.learned.contains_key(inst) {
                self.proposed.insert(*inst, cmd.clone());
            }
        }
    }

    /// After adoption: re-send accepts for every pinned-but-unlearned
    /// instance, filling holes with no-ops, and bring `next_instance`
    /// beyond everything known.
    fn repropose_unlearned(&mut self, now: Nanos, out: &mut Outbox<Msg>) {
        let max_known = [
            self.proposed.keys().next_back().map(|&i| i + 1),
            self.learned.keys().next_back().map(|&i| i + 1),
        ]
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
        .max(self.watermark)
        .max(self.next_instance);
        for inst in self.watermark..max_known {
            if self.learned.contains_key(&inst) {
                continue;
            }
            let cmd = match self.proposed.get(&inst) {
                Some(c) => c.clone(),
                None => {
                    // Hole: propose a no-op so the log stays contiguous.
                    self.noop_seq += 1;
                    let c = Command::noop(self.me(), self.noop_seq);
                    self.proposed.insert(inst, c.clone());
                    c
                }
            };
            self.inflight.insert(inst, now);
            let pn = self.pn;
            let acceptor = self.active_acceptor.expect("leader has an acceptor");
            out.send(acceptor, Msg::AcceptReq { inst, pn, cmd });
        }
        self.next_instance = max_known;
    }

    // ------------------------------------------------------------------
    // Learner side
    // ------------------------------------------------------------------

    /// Drops all per-instance state below `watermark` and fast-forwards
    /// the proposer/learner past it. Reached two ways: the engine applied
    /// an [`Op::Truncate`] locally (via [`Protocol::truncate`]), or the
    /// active acceptor told a stale proposer about its floor
    /// ([`Msg::Truncated`]). Proposals pinned below the floor that are not
    /// known decided are re-advocated in fresh instances; the RSM session
    /// layer deduplicates any that were in fact decided there.
    fn apply_truncate(&mut self, watermark: Instance) {
        if watermark <= self.trunc_floor {
            return;
        }
        self.trunc_floor = watermark;
        // Re-advocate pinned-but-unlearned proposals from truncated slots
        // *before* pruning the dedup map that filters them.
        let keep = self.proposed.split_off(&watermark);
        let orphans: Vec<Command> = std::mem::replace(&mut self.proposed, keep)
            .into_values()
            .filter(|c| !self.decided_ids.contains_key(&c.id()))
            .collect();
        self.queue.extend(orphans);
        self.learned = self.learned.split_off(&watermark);
        self.ap = self.ap.split_off(&watermark);
        self.inflight = self.inflight.split_off(&watermark);
        self.decided_ids.retain(|_, &mut inst| inst >= watermark);
        self.watermark = self.watermark.max(watermark);
        while self.learned.contains_key(&self.watermark) {
            self.watermark += 1;
        }
        self.next_instance = self.next_instance.max(watermark);
    }

    fn note_learned(&mut self, inst: Instance, cmd: Command, out: &mut Outbox<Msg>) {
        if inst < self.trunc_floor {
            // The slot is already covered by the snapshot the truncation
            // was agreed against; its value was applied long ago.
            return;
        }
        if let Some(prior) = self.learned.get(&inst) {
            assert_eq!(
                *prior, cmd,
                "1Paxos consistency violation: two values learned for instance {inst}"
            );
            return;
        }
        self.learned.insert(inst, cmd.clone());
        self.decided_ids.entry(cmd.id()).or_insert(inst);
        if let Some(pinned) = self.proposed.remove(&inst) {
            // Our proposal lost the slot to another leader's command:
            // re-advocate it in a fresh instance instead of dropping it.
            if pinned.id() != cmd.id() && !self.decided_ids.contains_key(&pinned.id()) {
                self.queue.push_back(pinned);
            }
        }
        self.inflight.remove(&inst);
        let id = cmd.id();
        self.forwarded.remove(&id);
        out.commit(inst, cmd);
        while self.learned.contains_key(&self.watermark) {
            self.watermark += 1;
        }
        if self.my_clients.remove(&id) {
            out.reply(id.0, id.1, inst);
        }
    }

    // ------------------------------------------------------------------
    // Acceptor side
    // ------------------------------------------------------------------

    fn acceptor_broadcast_learn(
        &mut self,
        inst: Instance,
        pn: Ballot,
        cmd: Command,
        out: &mut Outbox<Msg>,
    ) {
        for peer in self.cfg.others() {
            out.send(
                peer,
                Msg::Learn {
                    inst,
                    pn,
                    cmd: cmd.clone(),
                },
            );
        }
        // The acceptor is also a learner; learn locally without a message.
        self.note_learned(inst, cmd, out);
    }

    // ------------------------------------------------------------------
    // PaxosUtility event plumbing
    // ------------------------------------------------------------------

    fn on_utility_events(&mut self, events: Vec<UtilityEvent>, now: Nanos, out: &mut Outbox<Msg>) {
        for ev in events {
            match ev {
                UtilityEvent::Chosen { entry, .. } => self.on_chosen_entry(entry, now, out),
                UtilityEvent::CasFinished { uinst, success } => {
                    self.on_cas_finished(uinst, success, now, out)
                }
                UtilityEvent::QueryDone { qid } => self.on_query_done(qid, now, out),
            }
        }
    }

    fn on_chosen_entry(&mut self, entry: UtilityEntry, now: Nanos, out: &mut Outbox<Msg>) {
        match entry {
            UtilityEntry::LeaderChange { leader, acceptor } => {
                self.active_acceptor = Some(acceptor);
                if leader != self.me() {
                    if self.i_am_leader || self.prepare_state.is_some() {
                        self.relinquish();
                    }
                    // Someone else's acceptor is by definition adopted or
                    // about to be by them; our freshness claim is void.
                    if self.expect_fresh_for == Some(acceptor) {
                        self.expect_fresh_for = None;
                    }
                    // Re-forward queued commands to the new leader.
                    let cmds: Vec<Command> = self.queue.drain(..).collect();
                    for cmd in cmds {
                        if self.decided_ids.contains_key(&cmd.id()) {
                            continue;
                        }
                        self.forwarded.insert(cmd.id(), (cmd.clone(), now));
                        out.send(leader, Msg::Forward { cmd });
                    }
                }
            }
            UtilityEntry::AcceptorChange {
                by,
                acceptor,
                uncommitted,
            } => {
                // "It guarantees that the next leader will try to propose
                // the same value for instance in" (§5.2).
                self.register_proposals(uncommitted.iter());
                self.active_acceptor = Some(acceptor);
                if by != self.me() {
                    // Only the Global leader inserts AcceptorChange
                    // (Lemma 1): if that is not us, we are not the leader.
                    if self.i_am_leader || self.prepare_state.is_some() {
                        self.relinquish();
                    }
                }
            }
        }
    }

    fn on_cas_finished(
        &mut self,
        uinst: Instance,
        success: bool,
        now: Nanos,
        out: &mut Outbox<Msg>,
    ) {
        match self.pending_op.clone() {
            PendingOp::TakeoverCas { uinst: u } if u == uinst => {
                self.pending_op = PendingOp::None;
                if success {
                    // We are the Global leader; reclaim forwarded commands
                    // and get adopted by the active acceptor (Fig 5 Step 3).
                    let reclaimed: Vec<Command> =
                        self.forwarded.values().map(|(c, _)| c.clone()).collect();
                    self.forwarded.clear();
                    self.queue.extend(reclaimed);
                    self.send_prepare(now, out);
                } else {
                    // Someone else won the slot; Chosen handling already
                    // updated our view. The tick will retry if needed.
                }
            }
            PendingOp::SwitchCas {
                uinst: u,
                new_acceptor,
            } if u == uinst => {
                self.pending_op = PendingOp::None;
                if success {
                    // Lines 12–13: adopt the new acceptor, drop
                    // leadership; `propose()` restarts from phase 1.
                    self.active_acceptor = Some(new_acceptor);
                    self.i_am_leader = false;
                    self.inflight.clear();
                    self.expect_fresh_for = Some(new_acceptor);
                    self.try_takeover(now, out);
                }
            }
            _ => {}
        }
    }

    fn on_query_done(&mut self, qid: u64, _now: Nanos, out: &mut Outbox<Msg>) {
        match self.pending_op.clone() {
            PendingOp::TakeoverQuery { qid: q } if q == qid => {
                self.pending_op = PendingOp::None;
                // `lastActiveAcceptor()` — our log now reflects a majority.
                self.active_acceptor = self.utility.global_acceptor();
                if self.i_am_leader {
                    return;
                }
                if self.utility.global_acceptor() == Some(self.me()) {
                    return; // cannot lead while being the acceptor
                }
                let Some(acceptor) = self.active_acceptor else {
                    return;
                };
                let entry = UtilityEntry::LeaderChange {
                    leader: self.me(),
                    acceptor,
                };
                let uinst = self.utility.start_cas(entry, out);
                self.pending_op = PendingOp::TakeoverCas { uinst };
            }
            PendingOp::SwitchQuery { qid: q } if q == qid => {
                self.pending_op = PendingOp::None;
                // Fig 12 lines 3–6: verify we are still the Global leader.
                if self.utility.global_leader() != Some(self.me()) {
                    self.relinquish();
                    self.active_acceptor = self.utility.global_acceptor();
                    return;
                }
                let current = self
                    .utility
                    .global_acceptor()
                    .expect("seeded log always names an acceptor");
                // `selectAcceptor()`: a node that is neither us nor the
                // failed acceptor.
                let Some(new_acceptor) = self.cfg.select_acceptor(self.me(), current, &[current])
                else {
                    return; // no candidate (e.g. 2-node cluster): wait
                };
                let uncommitted: Vec<(Instance, Command)> =
                    self.proposed.iter().map(|(&i, c)| (i, c.clone())).collect();
                let entry = UtilityEntry::AcceptorChange {
                    by: self.me(),
                    acceptor: new_acceptor,
                    uncommitted,
                };
                let uinst = self.utility.start_cas(entry, out);
                self.pending_op = PendingOp::SwitchCas {
                    uinst,
                    new_acceptor,
                };
            }
            _ => {}
        }
    }
}

impl Protocol for OnePaxosNode {
    type Msg = Msg;

    fn node_id(&self) -> NodeId {
        self.cfg.me()
    }

    fn on_start(&mut self, now: Nanos, out: &mut Outbox<Msg>) {
        out.set_timer(Timer::Tick, self.timing.tick);
        if self.cfg.initial_leader() == self.me() {
            // Get adopted by the (fresh) initial acceptor.
            self.send_prepare(now, out);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, now: Nanos, out: &mut Outbox<Msg>) {
        match msg {
            Msg::Forward { cmd } => {
                if self.decided_ids.contains_key(&cmd.id()) {
                    // Stale forward of an already-decided command.
                } else if self.i_am_leader {
                    self.propose_cmd(cmd, now, out);
                } else {
                    // Misdirected: queue it; the tick re-routes it to the
                    // current leader or takes over if commands stall
                    // (never re-forward inline — avoids loops).
                    self.queue.push_back(cmd);
                }
            }
            Msg::PrepareReq { pn, expect_fresh } => {
                self.observe_round(pn);
                if pn > self.hpn {
                    if self.i_am_fresh != expect_fresh {
                        // Appendix A: "This check avoids the cases where
                        // the active acceptor silently reboots before the
                        // leader switch."
                        self.freshness_blocks += 1;
                        out.send(
                            from,
                            Msg::Abandon {
                                hpn: self.hpn,
                                fresh: self.i_am_fresh,
                                re: AbandonRe::Prepare,
                            },
                        );
                        return;
                    }
                    self.i_am_fresh = false;
                    self.hpn = pn;
                    let accepted: Vec<(Instance, Ballot, Command)> = self
                        .ap
                        .iter()
                        .map(|(&i, (b, c))| (i, *b, c.clone()))
                        .collect();
                    out.send(from, Msg::PrepareResp { pn, accepted });
                } else {
                    out.send(
                        from,
                        Msg::Abandon {
                            hpn: self.hpn,
                            fresh: self.i_am_fresh,
                            re: AbandonRe::Prepare,
                        },
                    );
                }
            }
            Msg::PrepareResp { pn, accepted } => {
                // Fig 12 line 38: `if (IamLeader || Ai != Aa) return;`
                if self.i_am_leader || Some(from) != self.active_acceptor {
                    return;
                }
                if self.prepare_state.map(|(p, _)| p) != Some(pn) {
                    return; // stale response to an older prepare
                }
                self.prepare_state = None;
                self.expect_fresh_for = None;
                self.i_am_leader = true;
                self.pn = pn;
                // Line 40: registerProposals(ap).
                let pinned: Vec<(Instance, Command)> =
                    accepted.iter().map(|(i, _, c)| (*i, c.clone())).collect();
                self.register_proposals(pinned.iter());
                self.repropose_unlearned(now, out);
                self.drain_queue(now, out);
            }
            Msg::AcceptReq { inst, pn, cmd } => {
                self.observe_round(pn);
                if inst < self.trunc_floor {
                    // The slot was agreed-truncated: its value is decided,
                    // applied and snapshotted. Accepting would let a stale
                    // leader re-decide it (e.g. as a no-op hole-filler).
                    out.send(
                        from,
                        Msg::Truncated {
                            floor: self.trunc_floor,
                        },
                    );
                } else if pn != self.hpn {
                    out.send(
                        from,
                        Msg::Abandon {
                            hpn: self.hpn,
                            fresh: self.i_am_fresh,
                            re: AbandonRe::Accept,
                        },
                    );
                } else if let Some((apn, acmd)) = self.ap.get(&inst).cloned() {
                    // Already accepted: re-broadcast the learn "to cover
                    // the cases that the lost learn message has motivated
                    // the proposer to retry" (Appendix A).
                    self.acceptor_broadcast_learn(inst, apn, acmd, out);
                } else {
                    self.ap.insert(inst, (pn, cmd.clone()));
                    self.acceptor_broadcast_learn(inst, pn, cmd, out);
                }
            }
            Msg::Abandon { hpn, fresh, re } => {
                self.observe_round(hpn);
                if Some(from) != self.active_acceptor {
                    return;
                }
                match re {
                    AbandonRe::Accept => {
                        if hpn > self.pn {
                            // Another proposer took the acceptor from us.
                            self.relinquish();
                        } else if hpn < self.pn {
                            // The acceptor lost its promise: it silently
                            // rebooted. "The last leader should switch the
                            // rebooted acceptor" — that is us.
                            self.i_am_leader = false;
                            self.acceptor_failure(now, out);
                        }
                    }
                    AbandonRe::Prepare => {
                        if hpn.node == self.me() && !fresh && !self.i_am_leader {
                            // Our own earlier prepare adopted the acceptor
                            // but the response is lost/slow: retry with a
                            // fresh pn (no freshness expectation).
                            self.expect_fresh_for = None;
                            self.send_prepare(now, out);
                        } else if hpn > self.pn {
                            // A higher proposer got there first.
                            self.prepare_state = None;
                            self.i_am_leader = false;
                        }
                        // Freshness mismatch (fresh=true while we sent
                        // false): blocked by design until the acceptor's
                        // last leader handles it; the tick keeps retrying.
                    }
                }
            }
            Msg::Learn { inst, pn, cmd } => {
                self.observe_round(pn);
                self.note_learned(inst, cmd, out);
            }
            Msg::Truncated { floor } => {
                // We proposed below the acceptor's truncation floor: we
                // are behind an agreed truncation. Fast-forward our own
                // bookkeeping; the engine's gap-backlog trigger fetches a
                // snapshot to close the apply gap this leaves.
                self.apply_truncate(floor);
                if self.i_am_leader {
                    // Orphaned proposals were re-queued; re-advocate them
                    // in fresh instances above the floor.
                    self.drain_queue(now, out);
                }
            }
            Msg::Utility(um) => {
                let events = self.utility.handle(from, um, out);
                self.on_utility_events(events, now, out);
            }
        }
    }

    fn on_timer(&mut self, timer: Timer, now: Nanos, out: &mut Outbox<Msg>) {
        if timer != Timer::Tick {
            return;
        }
        out.set_timer(Timer::Tick, self.timing.tick);
        // Retry a stalled utility CAS (duelling avoidance). With ≥2 nodes
        // a retry cannot decide anything by itself, so no events surface
        // here; decisions arrive via Learn messages.
        self.utility.tick(out);

        // Leader: suspect the acceptor when accepts go unanswered.
        if self.i_am_leader {
            let stalled = self
                .inflight
                .values()
                .any(|&t| now.saturating_sub(t) > self.timing.io_timeout);
            if stalled {
                self.acceptor_failure(now, out);
            }
        }

        // Candidate: prepare timed out.
        if let Some((_, at)) = self.prepare_state {
            if now.saturating_sub(at) > self.timing.io_timeout {
                let acceptor = self.active_acceptor;
                if self.expect_fresh_for.is_some()
                    && self.expect_fresh_for == acceptor
                    && self.utility.global_leader() == Some(self.me())
                {
                    // Our own fresh, never-adopted acceptor is unresponsive:
                    // nobody can have stored values there, so switching
                    // again is safe.
                    self.prepare_state = None;
                    self.acceptor_failure(now, out);
                } else {
                    self.send_prepare(now, out);
                }
            }
        }

        // Follower: forwarded commands stalled → the leader is slow; take
        // over (§7.6).
        if !self.i_am_leader {
            let stale = self
                .forwarded
                .values()
                .any(|&(_, t)| now.saturating_sub(t) > self.timing.suspect_after);
            if stale {
                let reclaimed: Vec<Command> =
                    self.forwarded.values().map(|(c, _)| c.clone()).collect();
                self.forwarded.clear();
                self.queue.extend(reclaimed);
                self.try_takeover(now, out);
            } else if !self.queue.is_empty() {
                match self.utility.global_leader() {
                    Some(l) if l != self.me() && self.pending_op == PendingOp::None => {
                        let cmds: Vec<Command> = self.queue.drain(..).collect();
                        for cmd in cmds {
                            if self.decided_ids.contains_key(&cmd.id()) {
                                continue;
                            }
                            self.forwarded.insert(cmd.id(), (cmd.clone(), now));
                            out.send(l, Msg::Forward { cmd });
                        }
                    }
                    _ => self.try_takeover(now, out),
                }
            }
        }
    }

    fn on_client_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        now: Nanos,
        out: &mut Outbox<Msg>,
    ) {
        let cmd = Command::new(client, req_id, op);
        self.my_clients.insert(cmd.id());
        self.route(cmd, now, out);
    }

    fn is_leader(&self) -> bool {
        self.i_am_leader
    }

    fn leader_hint(&self) -> Option<NodeId> {
        self.utility.global_leader()
    }

    fn supports_local_reads(&self) -> bool {
        self.relaxed_reads
    }

    fn can_read_locally(&self, _key: u64) -> bool {
        // Relaxed reads never wait: the learner state is always readable
        // (it is a committed — possibly slightly stale — prefix).
        self.relaxed_reads
    }

    fn truncate(&mut self, watermark: Instance) {
        self.apply_truncate(watermark);
    }
}

#[cfg(test)]
mod tests;
