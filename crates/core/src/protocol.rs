//! The sans-IO protocol interface implemented by every agreement protocol
//! in this crate (1Paxos, Multi-Paxos, Basic-Paxos, 2PC).

use crate::outbox::{Outbox, Timer};
use crate::types::{Instance, Nanos, NodeId, Op};

/// A deterministic, event-driven agreement protocol node.
///
/// Implementations are pure state machines: given the same sequence of
/// `on_*` invocations they produce the same actions. All IO — message
/// transport, timers, state-machine application, client replies — is
/// performed by the harness that owns the node (the `manycore-sim`
/// discrete-event simulator or the `onepaxos-runtime` threaded runtime).
///
/// The paper's observation that protocols built on the QC-libtask
/// interfaces "can be easily ported to a network system with no change"
/// (§6.2) maps here to: the same `Protocol` value runs unchanged on either
/// harness.
pub trait Protocol {
    /// The protocol's wire message type.
    type Msg: Clone + std::fmt::Debug + Send + 'static;

    /// This node's id.
    fn node_id(&self) -> NodeId;

    /// Invoked once before any other handler; protocols arm their periodic
    /// tick and perform bootstrap sends here.
    fn on_start(&mut self, now: Nanos, out: &mut Outbox<Self::Msg>);

    /// A message from `from` has been delivered.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, now: Nanos, out: &mut Outbox<Self::Msg>);

    /// A previously armed timer fired.
    fn on_timer(&mut self, timer: Timer, now: Nanos, out: &mut Outbox<Self::Msg>);

    /// A client submitted operation `op` with id `(client, req_id)` to this
    /// node. The node advocates the command (possibly forwarding it to the
    /// current leader) and eventually some node emits
    /// [`Action::Reply`](crate::Action::Reply) for it.
    fn on_client_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        now: Nanos,
        out: &mut Outbox<Self::Msg>,
    );

    /// Whether this node currently believes itself to be the leader
    /// (coordinator). Used by harnesses for metrics and by tests.
    fn is_leader(&self) -> bool;

    /// The node this one currently believes to be the leader, if any.
    fn leader_hint(&self) -> Option<NodeId>;

    /// Whether this protocol ever serves reads from the local replica
    /// without agreement traffic (§7.5). The Paxos family defaults to
    /// `false`: reads are ordered through consensus. 2PC overrides it.
    fn supports_local_reads(&self) -> bool {
        false
    }

    /// Attempt to service a read of `key` locally without any agreement
    /// traffic *right now*. For 2PC this is allowed exactly when the
    /// local copy is not locked "in the gap between two phases of 2PC"
    /// (§7.5); a read arriving inside the gap waits for the lock window
    /// to close.
    fn can_read_locally(&self, key: u64) -> bool {
        let _ = key;
        false
    }

    /// An agreed truncation ([`Op::Truncate`]) applied at this node:
    /// every instance below `watermark` is decided, applied and covered
    /// by the replica's snapshot, so per-instance protocol state below
    /// it (learned values, acceptor votes, proposer bookkeeping) may be
    /// dropped. Protocols without per-instance history ignore it.
    fn truncate(&mut self, watermark: Instance) {
        let _ = watermark;
    }
}

/// Convenience: a boxed protocol is also a protocol (enables heterogeneous
/// harness code and trait-object deployments).
impl<P: Protocol + ?Sized> Protocol for Box<P> {
    type Msg = P::Msg;

    fn node_id(&self) -> NodeId {
        (**self).node_id()
    }

    fn on_start(&mut self, now: Nanos, out: &mut Outbox<Self::Msg>) {
        (**self).on_start(now, out)
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Msg,
        now: Nanos,
        out: &mut Outbox<Self::Msg>,
    ) {
        (**self).on_message(from, msg, now, out)
    }

    fn on_timer(&mut self, timer: Timer, now: Nanos, out: &mut Outbox<Self::Msg>) {
        (**self).on_timer(timer, now, out)
    }

    fn on_client_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: Op,
        now: Nanos,
        out: &mut Outbox<Self::Msg>,
    ) {
        (**self).on_client_request(client, req_id, op, now, out)
    }

    fn is_leader(&self) -> bool {
        (**self).is_leader()
    }

    fn leader_hint(&self) -> Option<NodeId> {
        (**self).leader_hint()
    }

    fn supports_local_reads(&self) -> bool {
        (**self).supports_local_reads()
    }

    fn can_read_locally(&self, key: u64) -> bool {
        (**self).can_read_locally(key)
    }

    fn truncate(&mut self, watermark: Instance) {
        (**self).truncate(watermark)
    }
}
