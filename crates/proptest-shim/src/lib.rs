//! Offline shim for the subset of the [`proptest`] API used by this
//! workspace's property tests.
//!
//! The build environment cannot reach crates.io, so the real crate is
//! unavailable; this shim implements the same surface — the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, range/tuple/collection strategies,
//! [`prop_oneof!`], `any::<T>()`, `prop::sample::Index`, the assertion
//! macros and [`test_runner::Config`] — over a deterministic splitmix64
//! generator. Differences from upstream: no shrinking (a failing case is
//! reported unshrunk), no failure persistence, and a fixed default seed —
//! runs are fully reproducible, so set `PROPTEST_SEED=<u64>` to explore a
//! fresh case set. Swap the path dependency for the registry crate to
//! restore the upstream behaviours.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and test-failure reporting.

    /// Random-number source behind every strategy: splitmix64, seeded from
    //  the test name so each test function explores its own sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// A generator seeded from `tag`, so each test function explores
        /// its own sequence. The default seed is fixed (fully
        /// reproducible runs); set `PROPTEST_SEED=<u64>` to explore a
        /// different case set — without it, repeated CI runs re-test the
        /// same frozen sequence, which reproduces failures but never
        /// widens coverage.
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the tag, folded into a non-zero seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Some(seed) = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
            {
                h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "empty sample range");
            self.next_u64() % n
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for upstream compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for upstream compatibility; the shim never rejects
        /// cases, so the limit is never reached.
        pub max_global_rejects: u32,
        /// Accepted for upstream compatibility; the shim prints nothing
        /// beyond the failure report.
        pub verbose: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 1024,
                verbose: 0,
            }
        }
    }

    /// Why a generated case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion in the test body failed.
        Fail(String),
        /// The case asked to be discarded (unused by this workspace).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (discarded) case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    /// Helper used by [`prop_oneof!`](crate::prop_oneof) to unify arm types.
    pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A value drawn verbatim every time.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Weighted choice between type-erased arms
    /// (built by [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .finish()
        }
    }

    impl<V> Union<V> {
        /// A union of `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a slice whose length is only known at use site.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// This index reduced to `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }

        /// The element of `slice` this index selects.
        ///
        /// # Panics
        ///
        /// Panics if `slice` is empty.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream forms used in this workspace: an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} of {} failed: {e}\n(inputs: {})",
                        stringify!($name),
                        stringify!($($arg),+),
                    );
                }
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed_strategy($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = prop::collection::vec(any::<u8>(), 16).generate(&mut rng);
        assert_eq!(fixed.len(), 16);
    }

    #[test]
    fn union_honours_weights_roughly() {
        let mut rng = crate::test_runner::TestRng::deterministic("union");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn index_selects_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("index");
        let data = [10, 20, 30];
        for _ in 0..100 {
            let idx = any::<prop::sample::Index>().generate(&mut rng);
            assert!(data.contains(idx.get(&data)));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0u8..16, v in prop::collection::vec(0u32..4, 0..3)) {
            prop_assert!(x < 16);
            prop_assert!(v.len() < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn config_is_respected(pair in ((0u16..3), (0u16..3))) {
            prop_assert!(pair.0 < 3 && pair.1 < 3);
        }
    }
}
