//! Cooperative task scheduler: the libtask analogue of §6.2 (Fig 7).
//!
//! "Upon reading a request from each queue, the requested thread blocks
//! and its reading destination is added to the waiting list of the
//! scheduler. The scheduler checks for all waiting reads and, upon
//! receiving a message, loads the context of the corresponding reading
//! thread. In other words, the developer takes advantage of the simple
//! blocking read interface, while the back-end benefits from the
//! asynchronous message-passing implementation" (§6.2).
//!
//! Here a "user-level thread" is a message handler plus the queue it is
//! blocked on; "loading its context" is invoking the handler. Everything
//! stays on one OS thread and the kernel is never involved — the design
//! goal the paper states for QC-libtask.

use crate::spsc::Receiver;

/// What a handler tells the scheduler after processing a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskControl {
    /// Keep the task on the waiting list (block on the next read).
    Continue,
    /// Remove the task: its connection is done.
    Finish,
}

struct WaitingRead<T> {
    rx: Receiver<T>,
    handler: Box<dyn FnMut(T) -> TaskControl + Send>,
}

impl<T> std::fmt::Debug for WaitingRead<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitingRead").finish_non_exhaustive()
    }
}

/// A single-threaded cooperative scheduler over blocking-read tasks.
///
/// # Examples
///
/// ```
/// use qc_channel::scheduler::{Scheduler, TaskControl};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let (tx, rx) = qc_channel::spsc::channel::<u32>(4);
/// let mut sched: Scheduler<u32> = Scheduler::new();
/// let sum = Arc::new(AtomicU32::new(0));
/// let s = Arc::clone(&sum);
/// sched.spawn_reader(rx, move |v| {
///     s.fetch_add(v, Ordering::Relaxed);
///     TaskControl::Continue
/// });
/// tx.try_send(1).unwrap();
/// tx.try_send(2).unwrap();
/// assert_eq!(sched.run_until_idle(), 2);
/// assert_eq!(sum.load(Ordering::Relaxed), 3);
/// ```
#[derive(Debug, Default)]
pub struct Scheduler<T> {
    waiting: Vec<WaitingRead<T>>,
    delivered: u64,
}

impl<T> Scheduler<T> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            waiting: Vec::new(),
            delivered: 0,
        }
    }

    /// Registers a task blocked reading `rx`; `handler` runs once per
    /// message (the paper's per-connection reading thread).
    pub fn spawn_reader(
        &mut self,
        rx: Receiver<T>,
        handler: impl FnMut(T) -> TaskControl + Send + 'static,
    ) {
        self.waiting.push(WaitingRead {
            rx,
            handler: Box::new(handler),
        });
    }

    /// Number of tasks on the waiting list.
    pub fn tasks(&self) -> usize {
        self.waiting.len()
    }

    /// Total messages delivered to handlers.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// One scheduling pass: checks every waiting read once, delivering at
    /// most one message per task. Returns the number delivered.
    pub fn poll_once(&mut self) -> usize {
        let mut delivered = 0;
        let mut i = 0;
        while i < self.waiting.len() {
            let task = &mut self.waiting[i];
            match task.rx.try_recv() {
                Some(v) => {
                    delivered += 1;
                    self.delivered += 1;
                    match (task.handler)(v) {
                        TaskControl::Continue => i += 1,
                        TaskControl::Finish => {
                            self.waiting.swap_remove(i);
                        }
                    }
                }
                None => i += 1,
            }
        }
        delivered
    }

    /// Polls until every queue is momentarily empty; returns the total
    /// number of messages delivered.
    pub fn run_until_idle(&mut self) -> usize {
        let mut total = 0;
        loop {
            let n = self.poll_once();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn delivers_to_the_right_task() {
        let (tx_a, rx_a) = spsc::channel::<u32>(4);
        let (tx_b, rx_b) = spsc::channel::<u32>(4);
        let sum_a = Arc::new(AtomicU32::new(0));
        let sum_b = Arc::new(AtomicU32::new(0));
        let mut sched = Scheduler::new();
        let (sa, sb) = (Arc::clone(&sum_a), Arc::clone(&sum_b));
        sched.spawn_reader(rx_a, move |v| {
            sa.fetch_add(v, Ordering::SeqCst);
            TaskControl::Continue
        });
        sched.spawn_reader(rx_b, move |v| {
            sb.fetch_add(v, Ordering::SeqCst);
            TaskControl::Continue
        });
        tx_a.try_send(1).unwrap();
        tx_b.try_send(10).unwrap();
        tx_a.try_send(2).unwrap();
        assert_eq!(sched.run_until_idle(), 3);
        assert_eq!(sum_a.load(Ordering::SeqCst), 3);
        assert_eq!(sum_b.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn finish_removes_task() {
        let (tx, rx) = spsc::channel::<u32>(4);
        let mut sched = Scheduler::new();
        sched.spawn_reader(rx, |_| TaskControl::Finish);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(sched.run_until_idle(), 1);
        assert_eq!(sched.tasks(), 0);
    }

    #[test]
    fn idle_scheduler_delivers_nothing() {
        let (_tx, rx) = spsc::channel::<u32>(1);
        let mut sched = Scheduler::new();
        sched.spawn_reader(rx, |_| TaskControl::Continue);
        assert_eq!(sched.run_until_idle(), 0);
        assert_eq!(sched.delivered(), 0);
    }

    #[test]
    fn cross_thread_pipeline() {
        let (tx, rx) = spsc::channel::<u32>(7);
        let (done_tx, done_rx) = spsc::channel::<u32>(1024);
        let mut sched = Scheduler::new();
        sched.spawn_reader(rx, move |v| {
            done_tx.send_spin(v * 2);
            TaskControl::Continue
        });
        let producer = std::thread::spawn(move || {
            for i in 0..500u32 {
                tx.send_spin(i);
            }
        });
        let mut got = 0;
        while got < 500 {
            sched.poll_once();
            while done_rx.try_recv().is_some() {
                got += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(got, 500);
    }
}
