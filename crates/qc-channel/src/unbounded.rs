//! Unbounded SPSC queue — the §3 transmission-delay experiment uses "a
//! sender process ... repeatedly issuing messages to an unbounded queue".
//!
//! Backed by `crossbeam`'s lock-free segment queue (no point re-deriving
//! a Michael-Scott variant here); the value added is the non-clonable
//! sender/receiver discipline matching the rest of the crate and the
//! traffic counters the measurements use.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::crossbeam::queue::SegQueue;

struct Inner<T> {
    q: SegQueue<T>,
    sends: AtomicUsize,
    recvs: AtomicUsize,
}

/// Producing half of an unbounded queue. Not cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("unbounded::Sender")
            .field("sends", &self.inner.sends.load(Ordering::Relaxed))
            .finish()
    }
}

/// Consuming half of an unbounded queue. Not cloneable.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("unbounded::Receiver")
            .field("recvs", &self.inner.recvs.load(Ordering::Relaxed))
            .finish()
    }
}

/// Creates an unbounded queue.
///
/// # Examples
///
/// ```
/// let (tx, rx) = qc_channel::unbounded::channel::<u32>();
/// for i in 0..1_000 {
///     tx.send(i); // never blocks, never fails
/// }
/// assert_eq!(rx.try_recv(), Some(0));
/// ```
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        q: SegQueue::new(),
        sends: AtomicUsize::new(0),
        recvs: AtomicUsize::new(0),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `v`; never blocks.
    pub fn send(&self, v: T) {
        self.inner.q.push(v);
        self.inner.sends.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages enqueued so far.
    pub fn sends(&self) -> usize {
        self.inner.sends.load(Ordering::Relaxed)
    }
}

impl<T> Receiver<T> {
    /// Dequeues the oldest message, if any.
    pub fn try_recv(&self) -> Option<T> {
        let v = self.inner.q.pop();
        if v.is_some() {
            self.inner.recvs.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.q.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.q.is_empty()
    }

    /// Messages dequeued so far.
    pub fn recvs(&self) -> usize {
        self.inner.recvs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_counters() {
        let (tx, rx) = channel::<u32>();
        for i in 0..100 {
            tx.send(i);
        }
        assert_eq!(tx.sends(), 100);
        assert_eq!(rx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.recvs(), 100);
        assert!(rx.is_empty());
    }

    #[test]
    fn cross_thread_stream() {
        const N: u64 = 100_000;
        let (tx, rx) = channel::<u64>();
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i);
            }
        });
        let mut sum = 0u64;
        let mut got = 0u64;
        while got < N {
            if let Some(v) = rx.try_recv() {
                sum += v;
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
    }
}
