//! ZIMP-style one-to-many broadcast channel (§8).
//!
//! "Aublin et al. propose ZIMP, a one-to-many communication mechanism for
//! cache-coherent many-cores, addressing situations in which messages
//! need to be broadcast to multiple receivers. [...] In QC-libtask, we
//! employ one-to-one communication in order to avoid scalability
//! limitations due to cache line sharing between a large number of
//! cores" (§8).
//!
//! This module implements the broadcast alternative so the trade-off can
//! be measured (`net_microbench`'s `broadcast` group): the writer pays a
//! *constant* number of slot writes per message regardless of the number
//! of subscribers — but every subscriber then reads (and clones from) the
//! same cache lines, which is exactly the sharing the paper's design
//! avoids.
//!
//! Design: a ring of slots, each carrying a monotonically increasing
//! sequence number. Every subscriber keeps a private cursor and publishes
//! its progress; the writer may only reuse a slot once *all* subscribers
//! have moved past it (the slowest reader gates the ring, the §8
//! multicast-tree objection in queue form).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::crossbeam::utils::CachePadded;

/// A broadcast slot: sequence tag plus payload.
#[repr(align(128))]
struct Slot<T> {
    /// Sequence of the value stored, or `u64::MAX` if empty. A slot with
    /// `seq == n` holds message `n`.
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    slots: Box<[Slot<T>]>,
    /// Next sequence the writer will publish.
    tail: CachePadded<AtomicU64>,
    /// Per-subscriber consumed-up-to counters (next sequence to read).
    cursors: Box<[CachePadded<AtomicU64>]>,
    /// Number of publishes blocked on the slowest reader.
    stalls: CachePadded<AtomicUsize>,
}

// SAFETY: values are written by the single producer and read (cloned) by
// subscribers only after the release-store of the slot's `seq` tag, and
// never overwritten until every subscriber's cursor has passed — the
// writer checks all cursors with acquire loads before reuse.
unsafe impl<T: Send + Sync> Send for Shared<T> {}
unsafe impl<T: Send + Sync> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        let cap = self.slots.len() as u64;
        let tail = *self.tail.get_mut();
        // Initialized slots are the last `min(tail, cap)` published ones.
        let start = tail.saturating_sub(cap);
        for seq in start..tail {
            let slot = &mut self.slots[(seq % cap) as usize];
            if *slot.seq.get_mut() == seq {
                // SAFETY: slot holds an initialized value for `seq`.
                unsafe { (*slot.val.get()).assume_init_drop() };
            }
        }
    }
}

/// The broadcasting half.
pub struct Broadcaster<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Broadcaster<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broadcaster")
            .field("subscribers", &self.shared.cursors.len())
            .field("published", &self.shared.tail.load(Ordering::Relaxed))
            .finish()
    }
}

/// One subscriber's receiving half.
pub struct Subscriber<T> {
    shared: Arc<Shared<T>>,
    id: usize,
    cursor: u64,
}

impl<T> std::fmt::Debug for Subscriber<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("id", &self.id)
            .field("cursor", &self.cursor)
            .finish()
    }
}

/// Creates a broadcast channel with `slots` ring slots and `subscribers`
/// receiving halves.
///
/// # Panics
///
/// Panics if `slots` or `subscribers` is zero.
///
/// # Examples
///
/// ```
/// let (bx, mut subs) = qc_channel::broadcast::channel::<u64>(8, 3);
/// bx.try_broadcast(7).unwrap();
/// for s in &mut subs {
///     assert_eq!(s.try_recv(), Some(7));
/// }
/// ```
pub fn channel<T: Clone>(slots: usize, subscribers: usize) -> (Broadcaster<T>, Vec<Subscriber<T>>) {
    assert!(slots > 0, "broadcast ring needs at least one slot");
    assert!(subscribers > 0, "broadcast needs at least one subscriber");
    let shared = Arc::new(Shared {
        slots: (0..slots)
            .map(|_| Slot {
                seq: AtomicU64::new(u64::MAX),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect(),
        tail: CachePadded::new(AtomicU64::new(0)),
        cursors: (0..subscribers)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
        stalls: CachePadded::new(AtomicUsize::new(0)),
    });
    let subs = (0..subscribers)
        .map(|id| Subscriber {
            shared: Arc::clone(&shared),
            id,
            cursor: 0,
        })
        .collect();
    (Broadcaster { shared }, subs)
}

/// Error returned when the ring is gated by its slowest subscriber.
#[derive(PartialEq, Eq)]
pub struct Lagging<T>(pub T);

impl<T> std::fmt::Debug for Lagging<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Lagging(..)")
    }
}

impl<T> std::fmt::Display for Lagging<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("slowest subscriber has not freed the slot yet")
    }
}

impl<T> std::error::Error for Lagging<T> {}

impl<T: Clone> Broadcaster<T> {
    /// Publishes `v` to every subscriber, or returns it if the slot is
    /// still being read by the slowest subscriber.
    ///
    /// # Errors
    ///
    /// Returns [`Lagging`] carrying the message back when the ring slot
    /// for this sequence has not been consumed by every subscriber.
    pub fn try_broadcast(&self, v: T) -> Result<(), Lagging<T>> {
        let sh = &*self.shared;
        let cap = sh.slots.len() as u64;
        let seq = sh.tail.load(Ordering::Relaxed);
        if seq >= cap {
            // Reusing a slot: every cursor must have passed seq - cap.
            let oldest = seq - cap;
            for c in sh.cursors.iter() {
                if c.load(Ordering::Acquire) <= oldest {
                    sh.stalls.fetch_add(1, Ordering::Relaxed);
                    return Err(Lagging(v));
                }
            }
        }
        let slot = &sh.slots[(seq % cap) as usize];
        // Drop the previous occupant, if any.
        if slot.seq.load(Ordering::Relaxed) != u64::MAX {
            // SAFETY: all subscribers are past this slot (checked above);
            // the single producer owns it now.
            unsafe { (*slot.val.get()).assume_init_drop() };
        }
        // SAFETY: producer-owned slot, see above.
        unsafe { (*slot.val.get()).write(v) };
        slot.seq.store(seq, Ordering::Release);
        sh.tail.store(seq + 1, Ordering::Release);
        Ok(())
    }

    /// Publishes, spinning while the slowest subscriber lags.
    pub fn broadcast_spin(&self, v: T) {
        let backoff = crate::crossbeam::utils::Backoff::new();
        let mut v = v;
        loop {
            match self.try_broadcast(v) {
                Ok(()) => return,
                Err(Lagging(back)) => {
                    v = back;
                    backoff.snooze();
                }
            }
        }
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.shared.tail.load(Ordering::Relaxed)
    }

    /// Publishes blocked at least once on a lagging subscriber.
    pub fn stalls(&self) -> usize {
        self.shared.stalls.load(Ordering::Relaxed)
    }
}

impl<T: Clone> Subscriber<T> {
    /// Receives the next message, if published.
    pub fn try_recv(&mut self) -> Option<T> {
        let sh = &*self.shared;
        let cap = sh.slots.len() as u64;
        let slot = &sh.slots[(self.cursor % cap) as usize];
        if slot.seq.load(Ordering::Acquire) != self.cursor {
            return None;
        }
        // SAFETY: the slot holds an initialized value for `cursor` (seq
        // tag matched under acquire); the producer will not overwrite it
        // until our cursor (published below) moves past it. Subscribers
        // share the value immutably, hence the clone.
        let v = unsafe { (*slot.val.get()).assume_init_ref().clone() };
        self.cursor += 1;
        sh.cursors[self.id].store(self.cursor, Ordering::Release);
        Some(v)
    }

    /// Receives, spinning until a message is published.
    pub fn recv_spin(&mut self) -> T {
        let backoff = crate::crossbeam::utils::Backoff::new();
        loop {
            if let Some(v) = self.try_recv() {
                return v;
            }
            backoff.snooze();
        }
    }

    /// Messages consumed so far.
    pub fn consumed(&self) -> u64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subscriber_sees_every_message_in_order() {
        let (bx, mut subs) = channel::<u64>(4, 3);
        for i in 0..4 {
            bx.try_broadcast(i).unwrap();
        }
        for s in &mut subs {
            for i in 0..4 {
                assert_eq!(s.try_recv(), Some(i));
            }
            assert_eq!(s.try_recv(), None);
        }
    }

    #[test]
    fn slowest_subscriber_gates_the_ring() {
        let (bx, mut subs) = channel::<u64>(2, 2);
        bx.try_broadcast(0).unwrap();
        bx.try_broadcast(1).unwrap();
        // Ring full; only subscriber 0 consumes.
        assert_eq!(subs[0].try_recv(), Some(0));
        assert!(bx.try_broadcast(2).is_err(), "subscriber 1 still lags");
        assert!(bx.stalls() >= 1);
        assert_eq!(subs[1].try_recv(), Some(0));
        bx.try_broadcast(2).unwrap();
        assert_eq!(subs[0].try_recv(), Some(1));
        assert_eq!(subs[1].try_recv(), Some(1));
        assert_eq!(subs[0].try_recv(), Some(2));
        assert_eq!(subs[1].try_recv(), Some(2));
    }

    #[test]
    fn cross_thread_fanout() {
        // Modest N: four spinning threads heavily oversubscribe small CI
        // machines.
        const N: u64 = 2_000;
        let (bx, subs) = channel::<u64>(8, 3);
        let readers: Vec<_> = subs
            .into_iter()
            .map(|mut s| {
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    for _ in 0..N {
                        sum += s.recv_spin();
                        std::thread::yield_now();
                    }
                    sum
                })
            })
            .collect();
        for i in 0..N {
            bx.broadcast_spin(i);
        }
        let expected = N * (N - 1) / 2;
        for r in readers {
            assert_eq!(r.join().unwrap(), expected);
        }
    }

    #[test]
    fn drop_releases_pending_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct Tracked(#[allow(dead_code)] Arc<()>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        {
            let (bx, mut subs) = channel::<Tracked>(4, 1);
            bx.try_broadcast(Tracked(Arc::new(()))).unwrap();
            bx.try_broadcast(Tracked(Arc::new(()))).unwrap();
            let _ = subs[0].try_recv(); // one cloned out and dropped
        }
        // 2 originals + 1 clone.
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 3);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = channel::<u8>(0, 1);
    }
}
