//! Fair polling over many peer queues.
//!
//! "A process that communicates with n other processes must check for new
//! messages from n separate read queues" (§6.2). The mailbox polls them
//! round-robin, resuming after the last served peer so a chatty neighbour
//! cannot starve the others.

use crate::spsc::Receiver;

/// A set of receive queues polled fairly, each tagged with a peer id.
#[derive(Debug)]
pub struct Mailbox<P, T> {
    peers: Vec<(P, Receiver<T>)>,
    /// Index after the peer served last, for round-robin fairness.
    cursor: usize,
}

impl<P: Copy, T> Default for Mailbox<P, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Copy, T> Mailbox<P, T> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            peers: Vec::new(),
            cursor: 0,
        }
    }

    /// Registers the receive queue from `peer`.
    pub fn add_peer(&mut self, peer: P, rx: Receiver<T>) {
        self.peers.push((peer, rx));
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether no peers are registered.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Polls all queues once, round-robin, returning the first message
    /// found together with its sender.
    pub fn poll(&mut self) -> Option<(P, T)> {
        let n = self.peers.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if let Some(v) = self.peers[i].1.try_recv() {
                self.cursor = i + 1;
                return Some((self.peers[i].0, v));
            }
        }
        None
    }

    /// Drains every currently available message into `f`, returning how
    /// many were delivered.
    pub fn drain(&mut self, mut f: impl FnMut(P, T)) -> usize {
        let mut count = 0;
        while let Some((p, v)) = self.poll() {
            f(p, v);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc;

    #[test]
    fn round_robin_is_fair() {
        let mut mb: Mailbox<u8, u32> = Mailbox::new();
        let (tx0, rx0) = spsc::channel(8);
        let (tx1, rx1) = spsc::channel(8);
        mb.add_peer(0, rx0);
        mb.add_peer(1, rx1);
        // Both peers have two messages; fairness interleaves them.
        for i in 0..2 {
            tx0.try_send(i).unwrap();
            tx1.try_send(100 + i).unwrap();
        }
        let order: Vec<(u8, u32)> = std::iter::from_fn(|| mb.poll()).collect();
        assert_eq!(order, vec![(0, 0), (1, 100), (0, 1), (1, 101)]);
    }

    #[test]
    fn poll_empty_returns_none() {
        let mut mb: Mailbox<u8, u32> = Mailbox::new();
        let (_tx, rx) = spsc::channel::<u32>(1);
        mb.add_peer(0, rx);
        assert_eq!(mb.poll(), None);
    }

    #[test]
    fn drain_collects_everything() {
        let mut mb: Mailbox<u8, u32> = Mailbox::new();
        let (tx0, rx0) = spsc::channel(8);
        let (tx1, rx1) = spsc::channel(8);
        mb.add_peer(0, rx0);
        mb.add_peer(1, rx1);
        for i in 0..3 {
            tx0.try_send(i).unwrap();
            tx1.try_send(i).unwrap();
        }
        let mut got = Vec::new();
        let n = mb.drain(|p, v| got.push((p, v)));
        assert_eq!(n, 6);
        assert_eq!(got.len(), 6);
    }
}
