//! Lock-free single-producer/single-consumer ring, the §6.1 message queue.
//!
//! "To implement asynchronous message passing, we use more than one slot
//! (seven by default) for sending messages. The size of each slot is 128
//! bytes, which is twice the cache line size. [...] The multiple slots are
//! wrapped into a queue. [...] Each queue has a head and a tail pointer.
//! The head pointer is moved by the reader and the tail by the writer. The
//! reader process verifies the equality of head and tail pointers to check
//! for new messages. [...] Because of separate queues, there is no need
//! for operating system locks to access the queues" (§6.1).
//!
//! The implementation is a classic Lamport ring: each slot is aligned and
//! padded to 128 bytes (two cache lines, as in the paper), the head and
//! tail indices live on their own cache lines, and the fast path is one
//! release store by the writer and one acquire load by the reader.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::crossbeam::utils::CachePadded;

/// Number of usable slots per queue if none is specified — the paper's
/// "seven by default" (§6.1).
pub const DEFAULT_SLOTS: usize = 7;

/// Paper's slot size: 128 bytes, twice the cache-line size (§6.1). Slots
/// are aligned to this so two slots never share a cache line.
pub const SLOT_BYTES: usize = 128;

/// A message slot, aligned and padded to [`SLOT_BYTES`].
#[repr(align(128))]
struct Slot<T> {
    val: UnsafeCell<MaybeUninit<T>>,
}

struct Inner<T> {
    /// Next index the reader will read. Moved only by the reader (§6.1).
    head: CachePadded<AtomicUsize>,
    /// Next index the writer will write. Moved only by the writer.
    tail: CachePadded<AtomicUsize>,
    slots: Box<[Slot<T>]>,
    /// Messages successfully enqueued (for the §3 measurements).
    sends: CachePadded<AtomicUsize>,
    /// Messages successfully dequeued.
    recvs: CachePadded<AtomicUsize>,
}

// SAFETY: the ring transfers `T` values between exactly one producer and
// one consumer; `T: Send` is sufficient because each value is accessed by
// one thread at a time, with release/acquire ordering on the indices
// establishing happens-before for the slot contents.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drain initialized slots.
        let cap = self.slots.len();
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            // SAFETY: slots in [head, tail) were written and never read.
            unsafe { (*self.slots[head].val.get()).assume_init_drop() };
            head = (head + 1) % cap;
        }
    }
}

/// Error returned by [`Sender::try_send`] when the queue is full; gives
/// the message back to the caller.
pub struct Full<T>(pub T);

impl<T> fmt::Debug for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Full(..)")
    }
}

impl<T> fmt::Display for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue is full")
    }
}

impl<T> std::error::Error for Full<T> {}

/// The producing half of an SPSC queue. Not cloneable: the type system
/// enforces the single producer.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &(self.inner.slots.len() - 1))
            .field("sends", &self.inner.sends.load(Ordering::Relaxed))
            .finish()
    }
}

/// The consuming half of an SPSC queue. Not cloneable.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &(self.inner.slots.len() - 1))
            .field("recvs", &self.inner.recvs.load(Ordering::Relaxed))
            .finish()
    }
}

/// Creates a queue with `slots` usable slots (one spare slot
/// distinguishes full from empty, so `slots + 1` are allocated).
///
/// # Panics
///
/// Panics if `slots` is zero.
///
/// # Examples
///
/// ```
/// let (tx, rx) = qc_channel::spsc::channel::<u64>(qc_channel::DEFAULT_SLOTS);
/// tx.try_send(7).unwrap();
/// assert_eq!(rx.try_recv(), Some(7));
/// assert_eq!(rx.try_recv(), None);
/// ```
pub fn channel<T>(slots: usize) -> (Sender<T>, Receiver<T>) {
    assert!(slots > 0, "queue must have at least one slot");
    let cap = slots + 1;
    let slots: Box<[Slot<T>]> = (0..cap)
        .map(|_| Slot {
            val: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let inner = Arc::new(Inner {
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        slots,
        sends: CachePadded::new(AtomicUsize::new(0)),
        recvs: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `v`, or returns it if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] carrying the message back when all slots are
    /// occupied.
    pub fn try_send(&self, v: T) -> Result<(), Full<T>> {
        let inner = &*self.inner;
        let cap = inner.slots.len();
        let tail = inner.tail.load(Ordering::Relaxed);
        let next = (tail + 1) % cap;
        if next == inner.head.load(Ordering::Acquire) {
            return Err(Full(v));
        }
        // SAFETY: single producer; the slot at `tail` is outside the
        // reader's [head, tail) window, hence unaliased.
        unsafe { (*inner.slots[tail].val.get()).write(v) };
        inner.tail.store(next, Ordering::Release);
        inner.sends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Enqueues `v`, spinning until a slot frees up. This is how the §3
    /// experiment's sender pauses "until it learns that the last message
    /// has been read" on a single-slot queue.
    pub fn send_spin(&self, v: T) {
        let backoff = crate::crossbeam::utils::Backoff::new();
        let mut v = v;
        loop {
            match self.try_send(v) {
                Ok(()) => return,
                Err(Full(back)) => {
                    v = back;
                    backoff.snooze();
                }
            }
        }
    }

    /// Whether the queue is currently full.
    pub fn is_full(&self) -> bool {
        let inner = &*self.inner;
        let cap = inner.slots.len();
        let tail = inner.tail.load(Ordering::Relaxed);
        (tail + 1) % cap == inner.head.load(Ordering::Acquire)
    }

    /// Usable slot count.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len() - 1
    }

    /// Messages successfully enqueued so far.
    pub fn sends(&self) -> usize {
        self.inner.sends.load(Ordering::Relaxed)
    }

    /// Whether the receiving half is still alive.
    pub fn receiver_alive(&self) -> bool {
        Arc::strong_count(&self.inner) > 1
    }
}

impl<T> Receiver<T> {
    /// Dequeues the oldest message, if any.
    pub fn try_recv(&self) -> Option<T> {
        let inner = &*self.inner;
        let cap = inner.slots.len();
        let head = inner.head.load(Ordering::Relaxed);
        if head == inner.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: single consumer; the slot at `head` was initialized by
        // the producer before the release store we acquired above.
        let v = unsafe { (*inner.slots[head].val.get()).assume_init_read() };
        inner.head.store((head + 1) % cap, Ordering::Release);
        inner.recvs.fetch_add(1, Ordering::Relaxed);
        Some(v)
    }

    /// Dequeues, spinning until a message arrives.
    pub fn recv_spin(&self) -> T {
        let backoff = crate::crossbeam::utils::Backoff::new();
        loop {
            if let Some(v) = self.try_recv() {
                return v;
            }
            backoff.snooze();
        }
    }

    /// Whether the queue currently holds no messages.
    pub fn is_empty(&self) -> bool {
        let inner = &*self.inner;
        inner.head.load(Ordering::Relaxed) == inner.tail.load(Ordering::Acquire)
    }

    /// Usable slot count.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len() - 1
    }

    /// Messages successfully dequeued so far.
    pub fn recvs(&self) -> usize {
        self.inner.recvs.load(Ordering::Relaxed)
    }

    /// Whether the sending half is still alive.
    pub fn sender_alive(&self) -> bool {
        Arc::strong_count(&self.inner) > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn full_returns_message() {
        let (tx, rx) = channel::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(tx.is_full());
        let Full(back) = tx.try_send(3).unwrap_err();
        assert_eq!(back, 3);
        assert_eq!(rx.try_recv(), Some(1));
        assert!(!tx.is_full());
        tx.try_send(3).unwrap();
    }

    #[test]
    fn single_slot_queue_alternates() {
        // The §3 propagation-delay experiment uses "a queue that can only
        // hold a single message".
        let (tx, rx) = channel::<u64>(1);
        tx.try_send(10).unwrap();
        assert!(tx.is_full());
        assert_eq!(rx.try_recv(), Some(10));
        tx.try_send(11).unwrap();
        assert_eq!(rx.try_recv(), Some(11));
    }

    #[test]
    fn capacity_reports_usable_slots() {
        let (tx, rx) = channel::<u8>(DEFAULT_SLOTS);
        assert_eq!(tx.capacity(), 7);
        assert_eq!(rx.capacity(), 7);
        for i in 0..7 {
            tx.try_send(i).unwrap();
        }
        assert!(tx.is_full());
    }

    #[test]
    fn counters_track_traffic() {
        let (tx, rx) = channel::<u8>(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        rx.try_recv().unwrap();
        assert_eq!(tx.sends(), 2);
        assert_eq!(rx.recvs(), 1);
    }

    #[test]
    fn cross_thread_transfer_of_everything() {
        const N: u64 = 100_000;
        let (tx, rx) = channel::<u64>(DEFAULT_SLOTS);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send_spin(i);
            }
        });
        let mut sum = 0u64;
        let mut count = 0u64;
        while count < N {
            if let Some(v) = rx.try_recv() {
                sum += v;
                count += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn cross_thread_order_preserved() {
        const N: u64 = 50_000;
        let (tx, rx) = channel::<u64>(3);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send_spin(i);
            }
        });
        for i in 0..N {
            assert_eq!(rx.recv_spin(), i);
        }
        producer.join().unwrap();
    }

    #[test]
    fn drop_drains_pending_messages() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = channel::<Tracked>(4);
        tx.try_send(Tracked).unwrap();
        tx.try_send(Tracked).unwrap();
        drop(rx.try_recv()); // one consumed
        drop(tx);
        drop(rx); // one still queued: must be dropped exactly once
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn endpoint_liveness() {
        let (tx, rx) = channel::<u8>(1);
        assert!(tx.receiver_alive());
        drop(rx);
        assert!(!tx.receiver_alive());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = channel::<u8>(0);
    }
}
