//! Bidirectional channels: "there are two queues between each two
//! processes pi and pj: one for writing by pi and reading by pj and the
//! other for reading by pi and writing by pj" (§6.1, Fig 6).

use crate::spsc::{self, Full, Receiver, Sender, DEFAULT_SLOTS};

/// One endpoint of a bidirectional channel: a send queue towards the peer
/// and a receive queue from it.
#[derive(Debug)]
pub struct Endpoint<T> {
    tx: Sender<T>,
    rx: Receiver<T>,
}

impl<T> Endpoint<T> {
    /// Sends to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] carrying the message back when the send queue is
    /// full.
    pub fn try_send(&self, v: T) -> Result<(), Full<T>> {
        self.tx.try_send(v)
    }

    /// Sends to the peer, spinning while the queue is full.
    pub fn send_spin(&self, v: T) {
        self.tx.send_spin(v)
    }

    /// Receives from the peer, if a message is waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.rx.try_recv()
    }

    /// Receives from the peer, spinning until a message arrives.
    pub fn recv_spin(&self) -> T {
        self.rx.recv_spin()
    }

    /// Splits into raw sender/receiver halves (e.g. to place them in a
    /// [`Mailbox`](crate::Mailbox)).
    pub fn into_split(self) -> (Sender<T>, Receiver<T>) {
        (self.tx, self.rx)
    }

    /// The sending half.
    pub fn sender(&self) -> &Sender<T> {
        &self.tx
    }

    /// The receiving half.
    pub fn receiver(&self) -> &Receiver<T> {
        &self.rx
    }
}

/// Creates a connected pair of endpoints with `slots` usable slots per
/// direction.
///
/// # Panics
///
/// Panics if `slots` is zero.
///
/// # Examples
///
/// ```
/// let (a, b) = qc_channel::duplex::pair::<&'static str>(qc_channel::DEFAULT_SLOTS);
/// a.try_send("ping").unwrap();
/// assert_eq!(b.try_recv(), Some("ping"));
/// b.try_send("pong").unwrap();
/// assert_eq!(a.try_recv(), Some("pong"));
/// ```
pub fn pair<T>(slots: usize) -> (Endpoint<T>, Endpoint<T>) {
    let (a_tx, b_rx) = spsc::channel(slots);
    let (b_tx, a_rx) = spsc::channel(slots);
    (
        Endpoint { tx: a_tx, rx: a_rx },
        Endpoint { tx: b_tx, rx: b_rx },
    )
}

/// Creates a connected pair with the paper's default of
/// [`DEFAULT_SLOTS`] slots per direction.
pub fn pair_default<T>() -> (Endpoint<T>, Endpoint<T>) {
    pair(DEFAULT_SLOTS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_are_independent() {
        let (a, b) = pair::<u32>(2);
        a.try_send(1).unwrap();
        a.try_send(2).unwrap();
        assert!(a.try_send(3).is_err()); // a→b full
        b.try_send(10).unwrap(); // b→a unaffected
        assert_eq!(a.try_recv(), Some(10));
        assert_eq!(b.try_recv(), Some(1));
    }

    #[test]
    fn ping_pong_across_threads() {
        let (a, b) = pair_default::<u64>();
        let echo = std::thread::spawn(move || {
            for _ in 0..10_000 {
                let v = b.recv_spin();
                b.send_spin(v + 1);
            }
        });
        for i in 0..10_000 {
            a.send_spin(i);
            assert_eq!(a.recv_spin(), i + 1);
        }
        echo.join().unwrap();
    }

    #[test]
    fn split_halves_work() {
        let (a, b) = pair::<u8>(1);
        let (atx, arx) = a.into_split();
        atx.try_send(5).unwrap();
        assert_eq!(b.try_recv(), Some(5));
        b.try_send(6).unwrap();
        assert_eq!(arx.try_recv(), Some(6));
    }
}
