//! Offline stand-ins for the `crossbeam` utilities this crate leans on.
//!
//! The build environment cannot fetch crates.io dependencies, so the three
//! pieces of `crossbeam` the queues use — `utils::CachePadded`,
//! `utils::Backoff` and `queue::SegQueue` — are re-implemented here with
//! the same paths and call shapes. The queue modules compile unchanged;
//! deleting this module and adding the real `crossbeam` dependency
//! restores the upstream implementations (whose `SegQueue` is lock-free
//! where this one takes a mutex).

pub(crate) mod utils {
    //! Cache-line padding and spin backoff.

    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes, so that two `CachePadded`
    /// fields never share a cache line (the false-sharing defence the
    /// paper's queues rely on; 128 covers the spatial prefetcher pulling
    /// adjacent-line pairs on x86).
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads `value`.
        pub fn new(value: T) -> Self {
            CachePadded { value }
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    /// Exponential spin backoff: spin-hint for a while, then start
    /// yielding the thread, mirroring `crossbeam_utils::Backoff`.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: std::cell::Cell<u32>,
    }

    /// Spin (2^step hints) up to this step, yield beyond it.
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    impl Backoff {
        /// A fresh backoff.
        pub fn new() -> Self {
            Backoff::default()
        }

        /// Backs off once, escalating from busy spinning to yielding.
        pub fn snooze(&self) {
            let step = self.step.get();
            if step <= SPIN_LIMIT {
                for _ in 0..1u32 << step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.set(step + 1);
            }
        }

        /// Whether the caller should stop spinning and park instead
        /// (part of the upstream surface; kept for drop-in parity).
        #[allow(dead_code)]
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }
}

pub(crate) mod queue {
    //! Unbounded MPMC queue.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded FIFO queue with the `crossbeam::queue::SegQueue` surface.
    /// A mutexed `VecDeque` rather than a lock-free segment list: the only
    /// user is the §3 measurement harness, where the queue is not on the
    /// path being measured.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues `value`; never blocks beyond the internal lock.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("queue poisoned").push_back(value);
        }

        /// Dequeues the oldest value, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue poisoned").pop_front()
        }

        /// Number of queued values.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
