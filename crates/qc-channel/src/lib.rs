//! Lock-free shared-memory message passing for many-core machines — the
//! QC-libtask analogue from *"Consensus Inside"* (MIDDLEWARE 2014), §6.
//!
//! The paper's framework has three layers, mirrored here:
//!
//! * **Message queuing** ([`spsc`], [`duplex`]): per-pair unidirectional
//!   queues of 128-byte cache-aligned slots (seven per queue by default),
//!   with the head pointer moved by the reader and the tail by the writer
//!   — no locks, no system calls on the fast path (§6.1, Fig 6).
//! * **Message delivery** ([`mailbox`], [`scheduler`]): a process talking
//!   to *n* peers polls *n* read queues; a cooperative scheduler gives
//!   handlers a blocking-read programming model over the asynchronous
//!   back-end (§6.2, Fig 7).
//! * **Measurement hooks**: queue counters used by the §3
//!   transmission/propagation-delay experiments (`tab_net` in the bench
//!   crate), plus the [`unbounded`] queue the §3 sender measurement uses.
//! * **The road not taken** ([`broadcast`]): a ZIMP-style one-to-many
//!   ring (§8), implemented so the unicast-vs-broadcast trade-off can be
//!   measured rather than argued.
//!
//! # Quickstart
//!
//! ```
//! use qc_channel::duplex;
//!
//! // One duplex channel per pair of cores (Fig 6).
//! let (core0, core1) = duplex::pair_default::<u64>();
//! core0.try_send(42).unwrap();
//! assert_eq!(core1.try_recv(), Some(42));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

mod crossbeam;

pub mod broadcast;
pub mod duplex;
pub mod mailbox;
pub mod scheduler;
pub mod spsc;
pub mod unbounded;

pub use duplex::Endpoint;
pub use mailbox::Mailbox;
pub use scheduler::{Scheduler, TaskControl};
pub use spsc::{channel, Full, Receiver, Sender, DEFAULT_SLOTS, SLOT_BYTES};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Sender<u64>>();
        assert_send::<Receiver<u64>>();
        assert_send::<Endpoint<u64>>();
    }

    #[test]
    fn slot_constants_match_paper() {
        assert_eq!(DEFAULT_SLOTS, 7);
        assert_eq!(SLOT_BYTES, 128);
    }
}
