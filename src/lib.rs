//! Facade crate for the *Consensus Inside* reproduction: re-exports the
//! protocol library, the many-core simulator substrate, the shared-memory
//! message-passing framework and the threaded runtime.
//!
//! See the individual crates for details:
//!
//! * [`onepaxos`] — 1Paxos, Multi-Paxos, Basic-Paxos, 2PC as sans-IO state
//!   machines (the paper's contribution and baselines).
//! * [`manycore_sim`] — deterministic discrete-event simulator of a
//!   many-core machine viewed as a network (reproduces the 48-core
//!   experiments).
//! * [`qc_channel`] — lock-free shared-memory message passing
//!   (the QC-libtask analogue of §6).
//! * [`onepaxos_runtime`] — real-thread deployment over `qc_channel`.

pub use manycore_sim;
pub use onepaxos;
pub use onepaxos_runtime;
pub use qc_channel;
