//! Barrelfish-style kernel-state replication — the scenario that
//! motivates the paper (§1, §2.1): several cores keep local replicas of a
//! capability table; updates must reach all replicas in the same order,
//! which a message-passing agreement protocol guarantees without any
//! shared locks.
//!
//! Here three "kernel" replicas run 1Paxos; two "core-local subsystems"
//! (client threads) concurrently grant and revoke capabilities. At the
//! end, every replica must hold the identical table.
//!
//! Run with: `cargo run --release --example kernel_state`

use std::sync::atomic::Ordering;

use onepaxos::onepaxos::{OnePaxosNode, Timing};
use onepaxos::{ClusterConfig, NodeId};
use onepaxos_runtime::ClusterBuilder;

/// Capability ids are keys; rights masks are values.
const CAP_SPACE: u64 = 16;

fn main() {
    let timing = Timing {
        tick: 2_000_000,
        io_timeout: 200_000_000,
        suspect_after: 400_000_000,
    };
    let (cluster, clients) = ClusterBuilder::new(3, move |members: &[NodeId], me| {
        OnePaxosNode::with_timing(ClusterConfig::new(members.to_vec(), me), timing)
    })
    .clients(2)
    .spawn();

    println!("two subsystems mutate the replicated capability table concurrently...");
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, mut client)| {
            std::thread::spawn(move || {
                for i in 0..50u64 {
                    let cap = (w as u64 * 31 + i * 7) % CAP_SPACE;
                    let rights = (w as u64 + 1) * 1000 + i;
                    client.put(cap, rights).expect("grant committed");
                    if i % 5 == 0 {
                        // Read back through consensus: sees the latest
                        // committed rights for that capability.
                        let seen = client.get(cap).expect("read committed");
                        assert!(seen.is_some(), "capability {cap} must exist");
                    }
                }
                client
            })
        })
        .collect();

    let mut clients: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();

    // Every replica applied the same sequence: commit counters agree on
    // the number of decided commands...
    let commits: Vec<u64> = cluster
        .metrics()
        .iter()
        .map(|m| m.committed.load(Ordering::Relaxed))
        .collect();
    println!("per-replica committed commands: {commits:?}");

    // ...and a final quorum read observes a single coherent table.
    let mut table = Vec::new();
    for cap in 0..CAP_SPACE {
        table.push((cap, clients[0].get(cap).expect("read")));
    }
    println!("final capability table (via ordered reads):");
    for (cap, rights) in &table {
        println!("  cap {cap:>2} -> {rights:?}");
    }

    cluster.shutdown();
    println!("done: {} capabilities replicated consistently.", CAP_SPACE);
}
