//! Quickstart: a replicated key/value store kept consistent by 1Paxos
//! across three replica threads, talking over lock-free shared-memory
//! queues — the smallest end-to-end use of the library.
//!
//! Run with: `cargo run --release --example quickstart`

use onepaxos::onepaxos::{OnePaxosNode, Timing};
use onepaxos::{ClusterConfig, NodeId};
use onepaxos_runtime::ClusterBuilder;

fn main() {
    // Relaxed failure-detection timeouts: unlike the paper's 48-core
    // testbed, a laptop/CI box oversubscribes its cores, and we do not
    // want spurious leader changes in a demo.
    let timing = Timing {
        tick: 2_000_000,            // 2 ms
        io_timeout: 200_000_000,    // 200 ms
        suspect_after: 400_000_000, // 400 ms
    };

    println!("spawning 3 replicas (1Paxos: leader on core 0, active acceptor on core 1)...");
    let (cluster, mut clients) = ClusterBuilder::new(3, move |members: &[NodeId], me| {
        OnePaxosNode::with_timing(ClusterConfig::new(members.to_vec(), me), timing)
    })
    .clients(1)
    .spawn();

    let client = &mut clients[0];

    // Writes go through consensus: leader → active acceptor → learners.
    for (key, value) in [(1, 100), (2, 200), (3, 300)] {
        let prev = client.put(key, value).expect("commit");
        println!("put({key}, {value}) committed (previous value: {prev:?})");
    }

    // Reads are ordered through consensus too (§7.5): strongest
    // consistency.
    for key in [1, 2, 3, 4] {
        let value = client.get(key).expect("commit");
        println!("get({key}) = {value:?}");
    }
    assert_eq!(client.get(2).expect("commit"), Some(200));

    // Overwrite and read back.
    client.put(2, 222).expect("commit");
    assert_eq!(client.get(2).expect("commit"), Some(222));
    println!("overwrite verified: get(2) = Some(222)");

    let metrics = cluster.metrics();
    for (i, m) in metrics.iter().enumerate() {
        println!(
            "replica {i}: committed={} sent={} received={}",
            m.committed.load(std::sync::atomic::Ordering::Relaxed),
            m.sent.load(std::sync::atomic::Ordering::Relaxed),
            m.received.load(std::sync::atomic::Ordering::Relaxed),
        );
    }

    cluster.shutdown();
    println!("done.");
}
