//! Miniature of the paper's §7.2/§7.3 evaluation: commit latency with a
//! single client and throughput under increasing load, for 1Paxos,
//! Multi-Paxos and 2PC on the simulated 48-core machine.
//!
//! Run with: `cargo run --release --example compare_protocols`

use consensus_inside::manycore_sim::{Profile, SimBuilder};
use consensus_inside::onepaxos::multipaxos::MultiPaxosNode;
use consensus_inside::onepaxos::onepaxos::OnePaxosNode;
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

fn main() {
    println!("single-client commit latency (paper §7.2: 16.0 / 19.6 / 21.4 µs):\n");
    let lat_one = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
        .requests_per_client(1_000)
        .run();
    let lat_mp = SimBuilder::new(Profile::opteron48(), |m, me| {
        MultiPaxosNode::new(cfg(m, me))
    })
    .requests_per_client(1_000)
    .run();
    let lat_2pc = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
        .requests_per_client(1_000)
        .run();
    println!("  1Paxos      {:>6.1} µs", lat_one.mean_latency_us());
    println!("  Multi-Paxos {:>6.1} µs", lat_mp.mean_latency_us());
    println!("  2PC         {:>6.1} µs", lat_2pc.mean_latency_us());

    println!("\nthroughput vs clients (paper Fig 8 shape):\n");
    println!("  clients    1Paxos  Multi-Paxos       2PC");
    for clients in [1usize, 3, 6, 13, 25, 45] {
        let t = |r: consensus_inside::manycore_sim::RunReport| r.throughput;
        let one = t(
            SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
                .clients(clients)
                .duration(100_000_000)
                .warmup(15_000_000)
                .run(),
        );
        let mp = t(SimBuilder::new(Profile::opteron48(), |m, me| {
            MultiPaxosNode::new(cfg(m, me))
        })
        .clients(clients)
        .duration(100_000_000)
        .warmup(15_000_000)
        .run());
        let two = t(
            SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
                .clients(clients)
                .duration(100_000_000)
                .warmup(15_000_000)
                .run(),
        );
        println!("  {clients:>7}  {one:>8.0}  {mp:>11.0}  {two:>8.0}");
    }
    println!("\n1Paxos commits with roughly half the messages per agreement (Fig 3),");
    println!("which is what the throughput gap reflects — cores saturate on message");
    println!("transmission, the scarce resource inside a many-core (§3).");
}
