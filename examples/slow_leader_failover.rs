//! The paper's headline resilience result (Fig 11), reproduced on the
//! deterministic simulator: a 1Paxos leader becomes slow mid-run; clients
//! re-target, another proposer takes over through PaxosUtility, and
//! throughput recovers — while 2PC under the same fault stays down
//! (§2.2), because a blocking protocol cannot ignore a slow core.
//!
//! Run with: `cargo run --release --example slow_leader_failover`

use consensus_inside::manycore_sim::Fault;
use consensus_inside::manycore_sim::{Profile, SimBuilder};
use consensus_inside::onepaxos::multipaxos;
use consensus_inside::onepaxos::onepaxos::{OnePaxosNode, Timing};
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId};

const DURATION: u64 = 3_000_000_000;
const FAULT_AT: u64 = 1_000_000_000;

fn spark(rates: &[(u64, f64)], max: f64) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    rates
        .iter()
        .step_by(4)
        .map(|&(_, r)| {
            let idx = ((r / max.max(1.0)) * 7.0).round().min(7.0) as usize;
            GLYPHS[idx]
        })
        .collect()
}

fn main() {
    let timing = Timing {
        tick: 1_000_000,
        io_timeout: 40_000_000,
        suspect_after: 80_000_000,
    };
    let fault = Fault {
        at: FAULT_AT,
        core: 0,
        slowdown: 5000.0,
    };

    println!("slowing core 0 (the leader/coordinator) at t=1s; 5 clients, 3 replicas\n");

    let one = SimBuilder::new(Profile::opteron8(), |m: &[NodeId], me| {
        OnePaxosNode::with_timing(ClusterConfig::new(m.to_vec(), me), timing)
    })
    .replicas(3)
    .clients(5)
    .think(2_000_000)
    .client_timeout(40_000_000)
    .duration(DURATION)
    .fault(fault)
    .run();

    let mp_timing = multipaxos::Timing {
        tick: 1_000_000,
        suspect_after: 80_000_000,
    };
    let mp = SimBuilder::new(Profile::opteron8(), |m: &[NodeId], me| {
        multipaxos::MultiPaxosNode::with_timing(ClusterConfig::new(m.to_vec(), me), mp_timing)
    })
    .replicas(3)
    .clients(5)
    .think(2_000_000)
    .client_timeout(40_000_000)
    .duration(DURATION)
    .fault(fault)
    .run();

    let two = SimBuilder::new(Profile::opteron8(), |m: &[NodeId], me| {
        TwoPcNode::new(ClusterConfig::new(m.to_vec(), me))
    })
    .replicas(3)
    .clients(5)
    .think(2_000_000)
    .client_timeout(40_000_000)
    .duration(DURATION)
    .fault(fault)
    .run();

    let rows = [("1Paxos", &one), ("Multi-Paxos", &mp), ("2PC", &two)];
    let max = rows
        .iter()
        .flat_map(|(_, r)| r.timeline.rates().map(|(_, v)| v))
        .fold(0.0f64, f64::max);
    println!("throughput timelines (each glyph = 40 ms; fault at 1/3):\n");
    for (name, report) in rows {
        let rates: Vec<(u64, f64)> = report.timeline.rates().collect();
        let tail: f64 = rates
            .iter()
            .rev()
            .take(10)
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        println!(
            "{name:>12}  {}  (final: {tail:>6.0} op/s)",
            spark(&rates, max)
        );
    }
    println!(
        "\n1Paxos and Multi-Paxos elect a new leader and recover; 2PC — blocking —\n\
         cannot commit again while the coordinator stays slow (§2.2 vs §7.6)."
    );
}
