//! The paper's §7.4 question: what if there are no dedicated replicas and
//! the agreement runs *directly between the clients* (every client is
//! also a replica)?
//!
//! This demo sweeps the joint-deployment size on the simulated 48-core
//! machine and prints the Fig 9 story: the message count per agreement
//! grows with the node count, so Multi-Paxos-Joint and 2PC-Joint peak
//! around 20 nodes and then decline, while 1Paxos-Joint — one accept to a
//! single acceptor per commit — keeps scaling to 47 nodes.
//!
//! Run with: `cargo run --release --example joint_deployment`

use consensus_inside::manycore_sim::{Profile, SimBuilder};
use consensus_inside::onepaxos::multipaxos::MultiPaxosNode;
use consensus_inside::onepaxos::onepaxos::OnePaxosNode;
use consensus_inside::onepaxos::twopc::TwoPcNode;
use consensus_inside::onepaxos::{ClusterConfig, NodeId};

fn cfg(m: &[NodeId], me: NodeId) -> ClusterConfig {
    ClusterConfig::new(m.to_vec(), me)
}

const DUR: u64 = 300_000_000;
const THINK: u64 = 2_000_000; // the paper's 2 ms think time

fn bar(v: f64, max: f64) -> String {
    let width = (v / max * 40.0).round() as usize;
    "#".repeat(width.max(1))
}

fn main() {
    println!("joint deployments (every client is a replica), 2 ms think time\n");
    let nodes = [3usize, 10, 20, 30, 40, 47];
    let mut rows = Vec::new();
    for &n in &nodes {
        let one = SimBuilder::new(Profile::opteron48(), |m, me| OnePaxosNode::new(cfg(m, me)))
            .joint(n)
            .think(THINK)
            .duration(DUR)
            .warmup(DUR / 8)
            .run()
            .throughput;
        let mp = SimBuilder::new(Profile::opteron48(), |m, me| {
            MultiPaxosNode::new(cfg(m, me))
        })
        .joint(n)
        .think(THINK)
        .duration(DUR)
        .warmup(DUR / 8)
        .run()
        .throughput;
        let two = SimBuilder::new(Profile::opteron48(), |m, me| TwoPcNode::new(cfg(m, me)))
            .joint(n)
            .think(THINK)
            .duration(DUR)
            .warmup(DUR / 8)
            .run()
            .throughput;
        rows.push((n, one, mp, two));
    }
    let max = rows
        .iter()
        .flat_map(|&(_, a, b, c)| [a, b, c])
        .fold(0.0f64, f64::max);
    for (n, one, mp, two) in rows {
        println!("{n:>2} nodes:");
        println!("   1Paxos-Joint      {:>7.0}  {}", one, bar(one, max));
        println!("   Multi-Paxos-Joint {:>7.0}  {}", mp, bar(mp, max));
        println!("   2PC-Joint         {:>7.0}  {}\n", two, bar(two, max));
    }
    println!("Fig 9's shape: the baselines peak near 20 nodes and decline; 1Paxos-Joint");
    println!("grows almost linearly — its per-commit message count at the busiest core");
    println!("does not grow with the number of replicas (§4.3).");
}
